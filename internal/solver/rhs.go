package solver

import (
	"time"

	"github.com/s3dgo/s3d/internal/cost"
	"github.com/s3dgo/s3d/internal/deriv"
	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/kernels"
	"github.com/s3dgo/s3d/internal/par"
	"github.com/s3dgo/s3d/internal/reactor"
	"github.com/s3dgo/s3d/internal/thermo"
)

// gasR is the universal gas constant (J/(mol·K)).
const gasR = thermo.R

// message tag bases for the two exchange rounds of each RHS evaluation.
const (
	tagConserved = 0
	tagFlux      = 100
)

// computeRHS evaluates dQ/dt into b.rhs at simulation time t. It performs
// the full S3D right-hand side: ghost exchange of the conserved state,
// primitive and transport-property recovery, gradient evaluation, flux
// assembly (convective + viscous + diffusive), a second ghost exchange of
// the fluxes, flux divergence, chemical source terms and NSCBC boundary
// corrections. Every stage with interior extent runs tiled over the block's
// worker-pool plan.
func (b *Block) computeRHS(t float64) {
	b.exchangeHalos(b.haloQ, tagConserved)
	b.computePrimitives()
	b.computeTransport()
	b.computeGradients()
	b.computeDiffFlux()
	b.assembleFluxes()

	b.exchangeHalos(b.haloFlux, tagFlux)

	b.divergence()
	if !b.cfg.ChemistryOff {
		b.chemSource()
	}
	b.applyNSCBC(t)
}

// EvalRHS runs one full right-hand-side evaluation at simulation time t
// (benchmark hook: BenchmarkRHSWorkers times exactly what an RK stage costs).
func (b *Block) EvalRHS(t float64) { b.computeRHS(t) }

// lohi returns the derivative closures for an axis.
func (b *Block) lohi(a grid.Axis) (deriv.BC, deriv.BC) {
	lo, hi := deriv.OneSided, deriv.OneSided
	if b.loGhost[a] {
		lo = deriv.UseGhosts
	}
	if b.hiGhost[a] {
		hi = deriv.UseGhosts
	}
	return lo, hi
}

// diff differentiates f along axis a into dst with the block's closures.
func (b *Block) diff(dst, f *grid.Field3, a grid.Axis) {
	lo, hi := b.lohi(a)
	deriv.Diff(dst, f, a, b.G.Metric(a), lo, hi)
}

// diffTile differentiates f along axis a into dst over one tile's box.
// DiffRange applies identical arithmetic per point for any tiling, so the
// assembled derivative is bitwise independent of the pool size.
func (b *Block) diffTile(dst, f *grid.Field3, a grid.Axis, t par.Tile, op deriv.Op) {
	b.diffTileOn(kernels.Generic(), dst, f, a, t, op)
}

// diffTileOn is diffTile through an explicit kernel backend (bitwise-equal
// to diffTile by the kernels contract; only the addressing strategy of the
// interior span changes).
func (b *Block) diffTileOn(im kernels.Impl, dst, f *grid.Field3, a grid.Axis, t par.Tile, op deriv.Op) {
	lo, hi := b.lohi(a)
	deriv.DiffRangeOn(im, dst, f, a, b.G.Metric(a), lo, hi, t.Lo, t.Hi, op)
}

// interior returns the block's interior index box.
func (b *Block) interior() par.Range {
	return par.Interior(b.G.Nx, b.G.Ny, b.G.Nz)
}

// computeGradients evaluates the first derivatives needed by the viscous
// and diffusive fluxes (velocity, temperature, species, mean molecular
// weight) and, on axes with physical NSCBC faces, density and pressure
// gradients for the characteristic boundary treatment. One tiled sweep per
// direction: each tile computes every field's derivative over its own box,
// reusing the source lines while they are cache-hot.
func (b *Block) computeGradients() {
	defer b.beginRegion("DERIVATIVES").End()
	vel := [3]*grid.Field3{b.U, b.V, b.W}
	r := b.interior()
	im := b.sel.Impl(kernels.Diff)
	for d := 0; d < 3; d++ {
		a := grid.Axis(d)
		needsBC := b.needsNSCBC(d)
		b.plan.Run("DERIVATIVES", r, func(t par.Tile, _ int) {
			for c := 0; c < 3; c++ {
				b.diffTileOn(im, b.dU[c][d], vel[c], a, t, deriv.OpSet)
			}
			b.diffTileOn(im, b.dT[d], b.T, a, t, deriv.OpSet)
			b.diffTileOn(im, b.dW[d], b.Wmix, a, t, deriv.OpSet)
			for n := 0; n < b.ns; n++ {
				b.diffTileOn(im, b.dY[n][d], b.Y[n], a, t, deriv.OpSet)
			}
			if needsBC {
				b.diffTileOn(im, b.dRho[d], b.Rho, a, t, deriv.OpSet)
				b.diffTileOn(im, b.dP[d], b.P, a, t, deriv.OpSet)
			}
		})
	}
}

// needsNSCBC reports whether the axis has a physical characteristic face on
// this block.
func (b *Block) needsNSCBC(a int) bool {
	loPhys := !b.interiorF[a][0] && b.faceBC[a][0] != Periodic
	hiPhys := !b.interiorF[a][1] && b.faceBC[a][1] != Periodic
	return loPhys || hiPhys
}

// assembleFluxes builds flux[var][dir] over the interior:
//
//	mass:      ρu_d
//	momentum:  ρu_c·u_d + δ_cd·p − τ_cd                  (paper eqs. 2, 14)
//	energy:    u_d(ρe₀+p) − (τ·u)_d + q_d               (paper eqs. 3, 20)
//	species:   ρY_n·u_d + J_nd                           (paper eq. 4)
//
// with q = −λ∇T + Σ hₙ·Jₙ. The diffusive fluxes J were prepared by
// computeDiffFlux (figure 4/5 kernel) including the correction velocity.
//
// The kernel is fused in the paper's figure-4/5 style: every field shares
// one flat row index, so each tile makes a single pass over the gradient and
// flux fields with one index computation per cell, the species enthalpies
// h_n(T) are evaluated once per cell into a per-worker buffer and reused by
// all three directions, and each J value is read exactly once per (cell,
// direction).
// The tile body comes in two backend flavours with identical per-point
// arithmetic (the kernels bitwise contract): the generic tile is the
// reference flat-index loop; the blocked tile hoists every operand slice out
// of the cell loop and walks re-sliced unit-stride row windows. Both are
// generic over the storage width of the gradient/transport operands, which
// the mixed precision policy demotes; narrow operands are widened on load
// and all arithmetic stays float64.
func (b *Block) assembleFluxes() {
	defer b.beginRegion("ASSEMBLE_FLUXES").End()
	blocked := b.sel.Blocked(kernels.FluxAssembly)
	b.plan.Run("ASSEMBLE_FLUXES", b.interior(), func(t par.Tile, worker int) {
		switch {
		case b.g32 != nil && blocked:
			assembleFluxesTileBlocked(b, b.g32, t, worker)
		case b.g32 != nil:
			assembleFluxesTile(b, b.g32, t, worker)
		case blocked:
			assembleFluxesTileBlocked(b, b.g64, t, worker)
		default:
			assembleFluxesTile(b, b.g64, t, worker)
		}
	})
}

// assembleFluxesTile is the reference (generic-backend) tile body.
func assembleFluxesTile[F grid.Float](b *Block, g *gradView[F], t par.Tile, worker int) {
	ns := b.ns
	species := b.mech.Set.Species
	h := b.ws[worker].hw
	for k := t.Lo[2]; k < t.Hi[2]; k++ {
		for j := t.Lo[1]; j < t.Hi[1]; j++ {
			row := b.Rho.Idx(0, j, k)
			for i := t.Lo[0]; i < t.Hi[0]; i++ {
				// One flat index addresses every same-shape field.
				p0 := row + i
				rho := b.Rho.Data[p0]
				u := [3]float64{b.U.Data[p0], b.V.Data[p0], b.W.Data[p0]}
				p := b.P.Data[p0]
				T := b.T.Data[p0]
				mu := float64(g.mu[p0])
				lam := float64(g.lam[p0])
				rhoE := b.Q[iRhoE].Data[p0]

				// Stress tensor (eq. 14): τ = μ(∇u + ∇uᵀ − ⅔δ∇·u).
				var gu [3][3]float64
				for c := 0; c < 3; c++ {
					for d := 0; d < 3; d++ {
						gu[c][d] = float64(g.dU[c][d][p0])
					}
				}
				div := gu[0][0] + gu[1][1] + gu[2][2]
				var tau [3][3]float64
				for c := 0; c < 3; c++ {
					for d := 0; d < 3; d++ {
						tau[c][d] = mu * (gu[c][d] + gu[d][c])
					}
					tau[c][c] -= mu * 2.0 / 3.0 * div
				}

				// Species enthalpies: once per cell, reused by all three
				// directions' heat fluxes and nowhere re-evaluated.
				for n := 0; n < ns; n++ {
					h[n] = species[n].H(T)
				}

				for d := 0; d < 3; d++ {
					// Heat flux (eq. 20); each J read feeds both the heat
					// flux and the species flux below via jd.
					q := -lam * float64(g.dT[d][p0])
					for n := 0; n < ns; n++ {
						q += h[n] * b.J[d][n].Data[p0]
					}

					b.flux[iRho][d].Data[p0] = rho * u[d]
					for c := 0; c < 3; c++ {
						f := rho*u[c]*u[d] - tau[c][d]
						if c == d {
							f += p
						}
						b.flux[iRhoU+c][d].Data[p0] = f
					}
					fe := u[d]*(rhoE+p) + q
					for c := 0; c < 3; c++ {
						fe -= tau[c][d] * u[c]
					}
					b.flux[iRhoE][d].Data[p0] = fe
					for n := 0; n < ns-1; n++ {
						b.flux[iY0+n][d].Data[p0] =
							rho*b.Y[n].Data[p0]*u[d] + b.J[d][n].Data[p0]
					}
				}
			}
		}
	}
}

// assembleFluxesTileBlocked is the hand-tiled tile body, restructured from
// the reference's cell-at-a-time loop into row-at-a-time streaming passes:
// per row, the shared intermediates (velocity divergence, the six distinct
// components of the symmetric stress tensor, the three heat-flux rows with
// the per-species enthalpy evaluated species-at-a-time so each species'
// thermo coefficients stay hot) land in per-worker scratch rows, then each
// flux component is written by one unit-stride check-free sweep over
// re-sliced row windows. All writes within a tile are disjoint, so the
// traversal reorder is free; every output value is produced by exactly the
// floating-point expression assembleFluxesTile uses, with the same
// association order per output (τ symmetry uses only the bitwise
// commutativity of IEEE addition), so results are bitwise identical.
func assembleFluxesTileBlocked[F grid.Float](b *Block, g *gradView[F], t par.Tile, worker int) {
	ns := b.ns
	species := b.mech.Set.Species
	ws := &b.ws[worker]
	n := t.Hi[0] - t.Lo[0]
	if n <= 0 {
		return
	}
	rhoA, uA, vA, wA := b.Rho.Data, b.U.Data, b.V.Data, b.W.Data
	pA, tA, eA := b.P.Data, b.T.Data, b.Q[iRhoE].Data
	fluxD, jD, yD := b.fluxD, &b.jD, b.yD
	hrow, dv := ws.rowH[:n], ws.rowDiv[:n]
	var qrow [3][]float64
	for d := range qrow {
		qrow[d] = ws.rowQ[d][:n]
	}
	var trow [6][]float64
	for m := range trow {
		trow[m] = ws.rowTau[m][:n]
	}
	// tauIdx maps the symmetric stress components onto the six scratch rows.
	tauIdx := [3][3]int{{0, 1, 2}, {1, 3, 4}, {2, 4, 5}}
	for k := t.Lo[2]; k < t.Hi[2]; k++ {
		for j := t.Lo[1]; j < t.Hi[1]; j++ {
			lo0 := b.Rho.Idx(t.Lo[0], j, k)
			// Row windows: one bounds check each at slice time, none per cell.
			rr := rhoA[lo0:][:n]
			ur, vr, wr := uA[lo0:][:n], vA[lo0:][:n], wA[lo0:][:n]
			pr, tr, er := pA[lo0:][:n], tA[lo0:][:n], eA[lo0:][:n]
			mur, lamr := g.mu[lo0:][:n], g.lam[lo0:][:n]
			uRows := [3][]float64{ur, vr, wr}
			var gur [3][3][]F
			var dtr [3][]F
			for c := 0; c < 3; c++ {
				for d := 0; d < 3; d++ {
					gur[c][d] = g.dU[c][d][lo0:][:n]
				}
				dtr[c] = g.dT[c][lo0:][:n]
			}

			// ∇·u row, the reference's three-term sum per cell.
			g00, g11, g22 := gur[0][0], gur[1][1], gur[2][2]
			for x := 0; x < n; x++ {
				dv[x] = float64(g00[x]) + float64(g11[x]) + float64(g22[x])
			}
			// Stress rows (eq. 14): the diagonal folds the bulk term with
			// the reference expression; off-diagonals are stored once and
			// serve both (c,d) and (d,c).
			for c := 0; c < 3; c++ {
				gcc, tcc := gur[c][c], trow[tauIdx[c][c]]
				for x := 0; x < n; x++ {
					mu := float64(mur[x])
					tcc[x] = mu*(float64(gcc[x])+float64(gcc[x])) - mu*2.0/3.0*dv[x]
				}
				for d := c + 1; d < 3; d++ {
					gcd, gdc, tcd := gur[c][d], gur[d][c], trow[tauIdx[c][d]]
					for x := 0; x < n; x++ {
						tcd[x] = float64(mur[x]) * (float64(gcd[x]) + float64(gdc[x]))
					}
				}
			}
			// Heat-flux rows (eq. 20): Fourier term first, then species
			// contributions in ascending order — the reference's per-cell
			// accumulation order per direction.
			for d := 0; d < 3; d++ {
				dtd, qd := dtr[d], qrow[d]
				for x := 0; x < n; x++ {
					qd[x] = -float64(lamr[x]) * float64(dtd[x])
				}
			}
			for n2 := 0; n2 < ns; n2++ {
				sp := species[n2]
				for x := 0; x < n; x++ {
					hrow[x] = sp.H(tr[x])
				}
				for d := 0; d < 3; d++ {
					jr, qd := jD[d][n2][lo0:][:n], qrow[d]
					for x := 0; x < n; x++ {
						qd[x] += hrow[x] * jr[x]
					}
				}
			}

			// Flux rows: one streaming write pass per (equation, direction).
			for d := 0; d < 3; d++ {
				udr := uRows[d]
				fm := fluxD[iRho][d][lo0:][:n]
				for x := 0; x < n; x++ {
					fm[x] = rr[x] * udr[x]
				}
				for c := 0; c < 3; c++ {
					fc, ucr, tcd := fluxD[iRhoU+c][d][lo0:][:n], uRows[c], trow[tauIdx[c][d]]
					if c == d {
						for x := 0; x < n; x++ {
							fc[x] = rr[x]*ucr[x]*udr[x] - tcd[x] + pr[x]
						}
					} else {
						for x := 0; x < n; x++ {
							fc[x] = rr[x]*ucr[x]*udr[x] - tcd[x]
						}
					}
				}
				fe := fluxD[iRhoE][d][lo0:][:n]
				t0d, t1d, t2d := trow[tauIdx[0][d]], trow[tauIdx[1][d]], trow[tauIdx[2][d]]
				qd := qrow[d]
				for x := 0; x < n; x++ {
					v := udr[x]*(er[x]+pr[x]) + qd[x]
					v -= t0d[x] * ur[x]
					v -= t1d[x] * vr[x]
					v -= t2d[x] * wr[x]
					fe[x] = v
				}
				for n2 := 0; n2 < ns-1; n2++ {
					fs := fluxD[iY0+n2][d][lo0:][:n]
					yr, jr := yD[n2][lo0:][:n], jD[d][n2][lo0:][:n]
					for x := 0; x < n; x++ {
						fs[x] = rr[x]*yr[x]*udr[x] + jr[x]
					}
				}
			}
		}
	}
}

// PrepareAssembleInputs runs the RHS stages assembleFluxes depends on, so
// the fused kernel can be benchmarked in isolation.
func (b *Block) PrepareAssembleInputs() {
	b.PrepareDiffFluxInputs()
	b.computeDiffFlux()
}

// AssembleFluxesOnly invokes just the fused flux-assembly kernel; inputs
// must have been prepared by PrepareAssembleInputs.
func (b *Block) AssembleFluxesOnly() { b.assembleFluxes() }

// divergence sets rhs[v] = −Σ_d ∂flux[v][d]/∂x_d over the interior. The x
// derivative lands with OpSet and y/z accumulate with OpAdd, fusing the
// former separate scratch-field AXPY passes into the derivative sweeps;
// per point the arithmetic (set, add, add, negate) is unchanged.
func (b *Block) divergence() {
	defer b.beginRegionNamed("DERIVATIVES", "DIVERGENCE").End()
	im := b.sel.Impl(kernels.Divergence)
	b.plan.Run("DIVERGENCE", b.interior(), func(t par.Tile, _ int) {
		for v := 0; v < b.nvar; v++ {
			b.diffTileOn(im, b.rhs[v], b.flux[v][0], grid.X, t, deriv.OpSet)
			b.diffTileOn(im, b.rhs[v], b.flux[v][1], grid.Y, t, deriv.OpAdd)
			b.diffTileOn(im, b.rhs[v], b.flux[v][2], grid.Z, t, deriv.OpAdd)
			b.rhs[v].ScaleRange(-1, t.Lo, t.Hi)
		}
	})
}

// chemSource adds the chemical production terms Wₙ·ω̇ₙ to the species
// equations (paper eq. 4). Total energy needs no source: the enthalpy in e₀
// already carries the chemical contribution. Each worker evaluates rates
// through its own mechanism clone; on telemetry steps the heat-release
// integral accumulates through the plan's ordered reduction slots, so the
// sum is bitwise identical for any worker count.
func (b *Block) chemSource() {
	defer b.beginRegion("REACTION_RATE_BOUNDS").End()
	if d := b.stragglerDelay; d > 0 {
		// Injected slowdown (SetStragglerDelay): charged inside the
		// chemistry region so the critpath analyzer blames the right kernel.
		time.Sleep(d)
	}
	// On the final RK stage of a cost-due step the deterministic chemistry
	// work proxy piggybacks on this sweep: reactor.SubstepRate on the cell
	// state yields the substep demand an adaptive integrator would pay — a
	// pure function of the state, bitwise reproducible at any worker count,
	// written to the cost_chem map and summed into ordered per-tile slots.
	doCost := b.collectCost
	if doCost {
		// The partition can hold more tiles than the one-plane split (hot
		// planes split along a secondary axis): size the ordered slots to it.
		n := b.plan.PartitionFor(cost.ChemKernel, b.interior(), -1).Len()
		if n > len(b.cSlots) {
			b.cSlots = make([]float64, n)
		}
		b.cTiles = n
	}
	if b.lbShare && b.lb != nil && (len(b.lb.exports) > 0 || len(b.lb.imports) > 0) {
		b.chemSourceShared()
		return
	}
	tile := func(t par.Tile, worker int, collect bool) float64 {
		hrr, tileCost := b.chemTileSweep(t, worker, collect, doCost)
		if doCost {
			b.cSlots[t.Index] = tileCost
		}
		return hrr
	}
	if doCost && b.lb != nil {
		// Owner attribution: everything was computed locally this stage.
		b.lbFillOwner(nil)
	}
	if b.collectHRR {
		b.hrrAcc = b.plan.RunReduce("REACTION_RATE_BOUNDS", b.interior(),
			func(t par.Tile, w int) float64 { return tile(t, w, true) })
		return
	}
	b.plan.Run("REACTION_RATE_BOUNDS", b.interior(),
		func(t par.Tile, w int) { tile(t, w, false) })
}

// chemTileSweep evaluates the chemistry kernel over one tile: production
// rates added to the species equations, plus (flagged) the heat-release
// integrand sum and the substep-proxy sum with its cost_chem writes. The
// per-cell arithmetic and the k-j-i accumulation order are the bitwise
// contract the work-sharing reply path reproduces remotely.
func (b *Block) chemTileSweep(t par.Tile, worker int, collect, doCost bool) (hrr, tileCost float64) {
	ns := b.ns
	species := b.mech.Set.Species
	ws := &b.ws[worker]
	for k := t.Lo[2]; k < t.Hi[2]; k++ {
		for j := t.Lo[1]; j < t.Hi[1]; j++ {
			for i := t.Lo[0]; i < t.Hi[0]; i++ {
				rho := b.Rho.At(i, j, k)
				T := b.T.At(i, j, k)
				for n := 0; n < ns; n++ {
					ws.cw[n] = rho * b.Y[n].At(i, j, k) / species[n].W
				}
				ws.mech.ProductionRates(T, ws.cw, ws.wdot)
				for n := 0; n < ns-1; n++ {
					b.rhs[iY0+n].Add(i, j, k, species[n].W*ws.wdot[n])
				}
				if collect {
					hrr += ws.mech.HeatReleaseRate(T, ws.wdot) * b.cellVol(i, j, k)
				}
				if doCost {
					// Species relative-change limit only: y and dydt fall
					// out of the concentrations and rates this sweep just
					// computed. The temperature term would need cp and
					// enthalpy polynomial sweeps — far too heavy for a
					// piggyback, and the stiff-radical species limits
					// dominate it anyway (the 1e-6 mass-fraction floor
					// makes trace radicals the binding constraint).
					inv := 1 / rho
					for n := 0; n < ns; n++ {
						ws.yw[n] = ws.cw[n] * species[n].W * inv
						ws.hw[n] = species[n].W * ws.wdot[n] * inv
					}
					rate := reactor.SubstepRate(T, ws.yw, ws.hw, 0, 0)
					s := cost.Substeps(rate, b.costDt)
					b.costChemF.Set(i, j, k, s)
					tileCost += s
				}
			}
		}
	}
	return hrr, tileCost
}
