package solver

import (
	"github.com/s3dgo/s3d/internal/deriv"
	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/thermo"
)

// gasR is the universal gas constant (J/(mol·K)).
const gasR = thermo.R

// message tag bases for the two exchange rounds of each RHS evaluation.
const (
	tagConserved = 0
	tagFlux      = 100
)

// computeRHS evaluates dQ/dt into b.rhs at simulation time t. It performs
// the full S3D right-hand side: ghost exchange of the conserved state,
// primitive and transport-property recovery, gradient evaluation, flux
// assembly (convective + viscous + diffusive), a second ghost exchange of
// the fluxes, flux divergence, chemical source terms and NSCBC boundary
// corrections.
func (b *Block) computeRHS(t float64) {
	b.exchangeHalos(b.Q, tagConserved)
	b.computePrimitives()
	b.computeTransport()
	b.computeGradients()
	b.computeDiffFlux()
	b.assembleFluxes()

	all := make([]*grid.Field3, 0, 3*b.nvar)
	for v := 0; v < b.nvar; v++ {
		all = append(all, b.flux[v][0], b.flux[v][1], b.flux[v][2])
	}
	b.exchangeHalos(all, tagFlux)

	b.divergence()
	if !b.cfg.ChemistryOff {
		b.chemSource()
	}
	b.applyNSCBC(t)
}

// lohi returns the derivative closures for an axis.
func (b *Block) lohi(a grid.Axis) (deriv.BC, deriv.BC) {
	lo, hi := deriv.OneSided, deriv.OneSided
	if b.loGhost[a] {
		lo = deriv.UseGhosts
	}
	if b.hiGhost[a] {
		hi = deriv.UseGhosts
	}
	return lo, hi
}

// diff differentiates f along axis a into dst with the block's closures.
func (b *Block) diff(dst, f *grid.Field3, a grid.Axis) {
	lo, hi := b.lohi(a)
	deriv.Diff(dst, f, a, b.G.Metric(a), lo, hi)
}

// computeGradients evaluates the first derivatives needed by the viscous
// and diffusive fluxes (velocity, temperature, species, mean molecular
// weight) and, on axes with physical NSCBC faces, density and pressure
// gradients for the characteristic boundary treatment.
func (b *Block) computeGradients() {
	b.Timers.Start("DERIVATIVES")
	defer b.Timers.Stop("DERIVATIVES")
	vel := [3]*grid.Field3{b.U, b.V, b.W}
	for d := 0; d < 3; d++ {
		a := grid.Axis(d)
		for c := 0; c < 3; c++ {
			b.diff(b.dU[c][d], vel[c], a)
		}
		b.diff(b.dT[d], b.T, a)
		b.diff(b.dW[d], b.Wmix, a)
		for n := 0; n < b.ns; n++ {
			b.diff(b.dY[n][d], b.Y[n], a)
		}
		if b.needsNSCBC(d) {
			b.diff(b.dRho[d], b.Rho, a)
			b.diff(b.dP[d], b.P, a)
		}
	}
}

// needsNSCBC reports whether the axis has a physical characteristic face on
// this block.
func (b *Block) needsNSCBC(a int) bool {
	loPhys := !b.interiorF[a][0] && b.faceBC[a][0] != Periodic
	hiPhys := !b.interiorF[a][1] && b.faceBC[a][1] != Periodic
	return loPhys || hiPhys
}

// assembleFluxes builds flux[var][dir] over the interior:
//
//	mass:      ρu_d
//	momentum:  ρu_c·u_d + δ_cd·p − τ_cd                  (paper eqs. 2, 14)
//	energy:    u_d(ρe₀+p) − (τ·u)_d + q_d               (paper eqs. 3, 20)
//	species:   ρY_n·u_d + J_nd                           (paper eq. 4)
//
// with q = −λ∇T + Σ hₙ·Jₙ. The diffusive fluxes J were prepared by
// computeDiffFlux (figure 4/5 kernel) including the correction velocity.
func (b *Block) assembleFluxes() {
	b.Timers.Start("ASSEMBLE_FLUXES")
	defer b.Timers.Stop("ASSEMBLE_FLUXES")
	ns := b.ns
	species := b.mech.Set.Species
	h := b.hw
	for k := 0; k < b.G.Nz; k++ {
		for j := 0; j < b.G.Ny; j++ {
			for i := 0; i < b.G.Nx; i++ {
				rho := b.Rho.At(i, j, k)
				u := [3]float64{b.U.At(i, j, k), b.V.At(i, j, k), b.W.At(i, j, k)}
				p := b.P.At(i, j, k)
				T := b.T.At(i, j, k)
				mu := b.Mu.At(i, j, k)
				lam := b.Lambda.At(i, j, k)
				rhoE := b.Q[iRhoE].At(i, j, k)

				// Stress tensor (eq. 14): τ = μ(∇u + ∇uᵀ − ⅔δ∇·u).
				var gu [3][3]float64
				for c := 0; c < 3; c++ {
					for d := 0; d < 3; d++ {
						gu[c][d] = b.dU[c][d].At(i, j, k)
					}
				}
				div := gu[0][0] + gu[1][1] + gu[2][2]
				var tau [3][3]float64
				for c := 0; c < 3; c++ {
					for d := 0; d < 3; d++ {
						tau[c][d] = mu * (gu[c][d] + gu[d][c])
					}
					tau[c][c] -= mu * 2.0 / 3.0 * div
				}

				for n := 0; n < ns; n++ {
					h[n] = species[n].H(T)
				}

				for d := 0; d < 3; d++ {
					// Heat flux (eq. 20).
					q := -lam * b.dT[d].At(i, j, k)
					for n := 0; n < ns; n++ {
						q += h[n] * b.J[d][n].At(i, j, k)
					}

					b.flux[iRho][d].Set(i, j, k, rho*u[d])
					for c := 0; c < 3; c++ {
						f := rho*u[c]*u[d] - tau[c][d]
						if c == d {
							f += p
						}
						b.flux[iRhoU+c][d].Set(i, j, k, f)
					}
					fe := u[d]*(rhoE+p) + q
					for c := 0; c < 3; c++ {
						fe -= tau[c][d] * u[c]
					}
					b.flux[iRhoE][d].Set(i, j, k, fe)
					for n := 0; n < ns-1; n++ {
						b.flux[iY0+n][d].Set(i, j, k,
							rho*b.Y[n].At(i, j, k)*u[d]+b.J[d][n].At(i, j, k))
					}
				}
			}
		}
	}
}

// divergence sets rhs[v] = −Σ_d ∂flux[v][d]/∂x_d over the interior.
func (b *Block) divergence() {
	b.Timers.Start("DERIVATIVES")
	defer b.Timers.Stop("DERIVATIVES")
	for v := 0; v < b.nvar; v++ {
		b.diff(b.rhs[v], b.flux[v][0], grid.X)
		for d := 1; d < 3; d++ {
			b.diff(b.scratchF, b.flux[v][d], grid.Axis(d))
			b.rhs[v].AXPY(1, b.scratchF)
		}
		b.rhs[v].Scale(-1)
	}
}

// chemSource adds the chemical production terms Wₙ·ω̇ₙ to the species
// equations (paper eq. 4). Total energy needs no source: the enthalpy in e₀
// already carries the chemical contribution.
func (b *Block) chemSource() {
	b.Timers.Start("REACTION_RATE_BOUNDS")
	defer b.Timers.Stop("REACTION_RATE_BOUNDS")
	ns := b.ns
	species := b.mech.Set.Species
	for k := 0; k < b.G.Nz; k++ {
		for j := 0; j < b.G.Ny; j++ {
			for i := 0; i < b.G.Nx; i++ {
				rho := b.Rho.At(i, j, k)
				T := b.T.At(i, j, k)
				for n := 0; n < ns; n++ {
					b.cw[n] = rho * b.Y[n].At(i, j, k) / species[n].W
				}
				b.mech.ProductionRates(T, b.cw, b.wdot)
				for n := 0; n < ns-1; n++ {
					b.rhs[iY0+n].Add(i, j, k, species[n].W*b.wdot[n])
				}
				if b.collectHRR {
					b.hrrAcc += b.mech.HeatReleaseRate(T, b.wdot) * b.cellVol(i, j, k)
				}
			}
		}
	}
}
