package solver

import (
	"github.com/s3dgo/s3d/internal/deriv"
	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/par"
	"github.com/s3dgo/s3d/internal/thermo"
)

// gasR is the universal gas constant (J/(mol·K)).
const gasR = thermo.R

// message tag bases for the two exchange rounds of each RHS evaluation.
const (
	tagConserved = 0
	tagFlux      = 100
)

// computeRHS evaluates dQ/dt into b.rhs at simulation time t. It performs
// the full S3D right-hand side: ghost exchange of the conserved state,
// primitive and transport-property recovery, gradient evaluation, flux
// assembly (convective + viscous + diffusive), a second ghost exchange of
// the fluxes, flux divergence, chemical source terms and NSCBC boundary
// corrections. Every stage with interior extent runs tiled over the block's
// worker-pool plan.
func (b *Block) computeRHS(t float64) {
	b.exchangeHalos(b.haloQ, tagConserved)
	b.computePrimitives()
	b.computeTransport()
	b.computeGradients()
	b.computeDiffFlux()
	b.assembleFluxes()

	b.exchangeHalos(b.haloFlux, tagFlux)

	b.divergence()
	if !b.cfg.ChemistryOff {
		b.chemSource()
	}
	b.applyNSCBC(t)
}

// EvalRHS runs one full right-hand-side evaluation at simulation time t
// (benchmark hook: BenchmarkRHSWorkers times exactly what an RK stage costs).
func (b *Block) EvalRHS(t float64) { b.computeRHS(t) }

// lohi returns the derivative closures for an axis.
func (b *Block) lohi(a grid.Axis) (deriv.BC, deriv.BC) {
	lo, hi := deriv.OneSided, deriv.OneSided
	if b.loGhost[a] {
		lo = deriv.UseGhosts
	}
	if b.hiGhost[a] {
		hi = deriv.UseGhosts
	}
	return lo, hi
}

// diff differentiates f along axis a into dst with the block's closures.
func (b *Block) diff(dst, f *grid.Field3, a grid.Axis) {
	lo, hi := b.lohi(a)
	deriv.Diff(dst, f, a, b.G.Metric(a), lo, hi)
}

// diffTile differentiates f along axis a into dst over one tile's box.
// DiffRange applies identical arithmetic per point for any tiling, so the
// assembled derivative is bitwise independent of the pool size.
func (b *Block) diffTile(dst, f *grid.Field3, a grid.Axis, t par.Tile, op deriv.Op) {
	lo, hi := b.lohi(a)
	deriv.DiffRange(dst, f, a, b.G.Metric(a), lo, hi, t.Lo, t.Hi, op)
}

// interior returns the block's interior index box.
func (b *Block) interior() par.Range {
	return par.Interior(b.G.Nx, b.G.Ny, b.G.Nz)
}

// computeGradients evaluates the first derivatives needed by the viscous
// and diffusive fluxes (velocity, temperature, species, mean molecular
// weight) and, on axes with physical NSCBC faces, density and pressure
// gradients for the characteristic boundary treatment. One tiled sweep per
// direction: each tile computes every field's derivative over its own box,
// reusing the source lines while they are cache-hot.
func (b *Block) computeGradients() {
	defer b.beginRegion("DERIVATIVES").End()
	vel := [3]*grid.Field3{b.U, b.V, b.W}
	r := b.interior()
	for d := 0; d < 3; d++ {
		a := grid.Axis(d)
		needsBC := b.needsNSCBC(d)
		b.plan.Run("DERIVATIVES", r, func(t par.Tile, _ int) {
			for c := 0; c < 3; c++ {
				b.diffTile(b.dU[c][d], vel[c], a, t, deriv.OpSet)
			}
			b.diffTile(b.dT[d], b.T, a, t, deriv.OpSet)
			b.diffTile(b.dW[d], b.Wmix, a, t, deriv.OpSet)
			for n := 0; n < b.ns; n++ {
				b.diffTile(b.dY[n][d], b.Y[n], a, t, deriv.OpSet)
			}
			if needsBC {
				b.diffTile(b.dRho[d], b.Rho, a, t, deriv.OpSet)
				b.diffTile(b.dP[d], b.P, a, t, deriv.OpSet)
			}
		})
	}
}

// needsNSCBC reports whether the axis has a physical characteristic face on
// this block.
func (b *Block) needsNSCBC(a int) bool {
	loPhys := !b.interiorF[a][0] && b.faceBC[a][0] != Periodic
	hiPhys := !b.interiorF[a][1] && b.faceBC[a][1] != Periodic
	return loPhys || hiPhys
}

// assembleFluxes builds flux[var][dir] over the interior:
//
//	mass:      ρu_d
//	momentum:  ρu_c·u_d + δ_cd·p − τ_cd                  (paper eqs. 2, 14)
//	energy:    u_d(ρe₀+p) − (τ·u)_d + q_d               (paper eqs. 3, 20)
//	species:   ρY_n·u_d + J_nd                           (paper eq. 4)
//
// with q = −λ∇T + Σ hₙ·Jₙ. The diffusive fluxes J were prepared by
// computeDiffFlux (figure 4/5 kernel) including the correction velocity.
//
// The kernel is fused in the paper's figure-4/5 style: every field shares
// one flat row index, so each tile makes a single pass over the gradient and
// flux fields with one index computation per cell, the species enthalpies
// h_n(T) are evaluated once per cell into a per-worker buffer and reused by
// all three directions, and each J value is read exactly once per (cell,
// direction).
func (b *Block) assembleFluxes() {
	defer b.beginRegion("ASSEMBLE_FLUXES").End()
	ns := b.ns
	species := b.mech.Set.Species
	b.plan.Run("ASSEMBLE_FLUXES", b.interior(), func(t par.Tile, worker int) {
		h := b.ws[worker].hw
		for k := t.Lo[2]; k < t.Hi[2]; k++ {
			for j := t.Lo[1]; j < t.Hi[1]; j++ {
				row := b.Rho.Idx(0, j, k)
				for i := t.Lo[0]; i < t.Hi[0]; i++ {
					// One flat index addresses every same-shape field.
					p0 := row + i
					rho := b.Rho.Data[p0]
					u := [3]float64{b.U.Data[p0], b.V.Data[p0], b.W.Data[p0]}
					p := b.P.Data[p0]
					T := b.T.Data[p0]
					mu := b.Mu.Data[p0]
					lam := b.Lambda.Data[p0]
					rhoE := b.Q[iRhoE].Data[p0]

					// Stress tensor (eq. 14): τ = μ(∇u + ∇uᵀ − ⅔δ∇·u).
					var gu [3][3]float64
					for c := 0; c < 3; c++ {
						for d := 0; d < 3; d++ {
							gu[c][d] = b.dU[c][d].Data[p0]
						}
					}
					div := gu[0][0] + gu[1][1] + gu[2][2]
					var tau [3][3]float64
					for c := 0; c < 3; c++ {
						for d := 0; d < 3; d++ {
							tau[c][d] = mu * (gu[c][d] + gu[d][c])
						}
						tau[c][c] -= mu * 2.0 / 3.0 * div
					}

					// Species enthalpies: once per cell, reused by all three
					// directions' heat fluxes and nowhere re-evaluated.
					for n := 0; n < ns; n++ {
						h[n] = species[n].H(T)
					}

					for d := 0; d < 3; d++ {
						// Heat flux (eq. 20); each J read feeds both the heat
						// flux and the species flux below via jd.
						q := -lam * b.dT[d].Data[p0]
						for n := 0; n < ns; n++ {
							q += h[n] * b.J[d][n].Data[p0]
						}

						b.flux[iRho][d].Data[p0] = rho * u[d]
						for c := 0; c < 3; c++ {
							f := rho*u[c]*u[d] - tau[c][d]
							if c == d {
								f += p
							}
							b.flux[iRhoU+c][d].Data[p0] = f
						}
						fe := u[d]*(rhoE+p) + q
						for c := 0; c < 3; c++ {
							fe -= tau[c][d] * u[c]
						}
						b.flux[iRhoE][d].Data[p0] = fe
						for n := 0; n < ns-1; n++ {
							b.flux[iY0+n][d].Data[p0] =
								rho*b.Y[n].Data[p0]*u[d] + b.J[d][n].Data[p0]
						}
					}
				}
			}
		}
	})
}

// PrepareAssembleInputs runs the RHS stages assembleFluxes depends on, so
// the fused kernel can be benchmarked in isolation.
func (b *Block) PrepareAssembleInputs() {
	b.PrepareDiffFluxInputs()
	b.computeDiffFlux()
}

// AssembleFluxesOnly invokes just the fused flux-assembly kernel; inputs
// must have been prepared by PrepareAssembleInputs.
func (b *Block) AssembleFluxesOnly() { b.assembleFluxes() }

// divergence sets rhs[v] = −Σ_d ∂flux[v][d]/∂x_d over the interior. The x
// derivative lands with OpSet and y/z accumulate with OpAdd, fusing the
// former separate scratch-field AXPY passes into the derivative sweeps;
// per point the arithmetic (set, add, add, negate) is unchanged.
func (b *Block) divergence() {
	defer b.beginRegionNamed("DERIVATIVES", "DIVERGENCE").End()
	b.plan.Run("DIVERGENCE", b.interior(), func(t par.Tile, _ int) {
		for v := 0; v < b.nvar; v++ {
			b.diffTile(b.rhs[v], b.flux[v][0], grid.X, t, deriv.OpSet)
			b.diffTile(b.rhs[v], b.flux[v][1], grid.Y, t, deriv.OpAdd)
			b.diffTile(b.rhs[v], b.flux[v][2], grid.Z, t, deriv.OpAdd)
			b.rhs[v].ScaleRange(-1, t.Lo, t.Hi)
		}
	})
}

// chemSource adds the chemical production terms Wₙ·ω̇ₙ to the species
// equations (paper eq. 4). Total energy needs no source: the enthalpy in e₀
// already carries the chemical contribution. Each worker evaluates rates
// through its own mechanism clone; on telemetry steps the heat-release
// integral accumulates through the plan's ordered reduction slots, so the
// sum is bitwise identical for any worker count.
func (b *Block) chemSource() {
	defer b.beginRegion("REACTION_RATE_BOUNDS").End()
	ns := b.ns
	species := b.mech.Set.Species
	tile := func(t par.Tile, worker int, collect bool) float64 {
		ws := &b.ws[worker]
		var hrr float64
		for k := t.Lo[2]; k < t.Hi[2]; k++ {
			for j := t.Lo[1]; j < t.Hi[1]; j++ {
				for i := t.Lo[0]; i < t.Hi[0]; i++ {
					rho := b.Rho.At(i, j, k)
					T := b.T.At(i, j, k)
					for n := 0; n < ns; n++ {
						ws.cw[n] = rho * b.Y[n].At(i, j, k) / species[n].W
					}
					ws.mech.ProductionRates(T, ws.cw, ws.wdot)
					for n := 0; n < ns-1; n++ {
						b.rhs[iY0+n].Add(i, j, k, species[n].W*ws.wdot[n])
					}
					if collect {
						hrr += ws.mech.HeatReleaseRate(T, ws.wdot) * b.cellVol(i, j, k)
					}
				}
			}
		}
		return hrr
	}
	if b.collectHRR {
		b.hrrAcc = b.plan.RunReduce("REACTION_RATE_BOUNDS", b.interior(),
			func(t par.Tile, w int) float64 { return tile(t, w, true) })
		return
	}
	b.plan.Run("REACTION_RATE_BOUNDS", b.interior(),
		func(t par.Tile, w int) { tile(t, w, false) })
}
