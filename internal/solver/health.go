package solver

// The solver side of the run-health watchdog (internal/health): a fused
// interior sweep fills a health.Sample per step from fields the RHS
// already computed, tiled kernels record would-be panics as structured
// faults instead of killing pool workers, and decomposed runs agree on
// abort through an allreduce'd status word so no rank is left blocked in
// a halo exchange its neighbour will never complete.

import (
	"math"

	"github.com/s3dgo/s3d/internal/comm"
	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/health"
	"github.com/s3dgo/s3d/internal/par"
)

// Rank returns this block's rank (0 for serial runs).
func (b *Block) Rank() int {
	if b.cart == nil {
		return 0
	}
	return b.cart.Comm.Rank()
}

// Ranks returns the number of ranks in the run (1 for serial).
func (b *Block) Ranks() int {
	if b.cart == nil {
		return 1
	}
	return b.cart.Comm.Size()
}

// InstallWatchdog attaches a health watchdog to the block. While the
// watchdog is armed, StepChecked evaluates the physics invariants at the
// end of every step and returns a *health.Violation instead of panicking;
// kernels that would panic record a fault the evaluation reports. Pass
// nil to detach (restoring the panic behaviour). In decomposed runs every
// rank must install and arm its watchdog at the same point: an armed step
// adds two small collectives (the global mass/energy sums and the abort
// status word), which must match across ranks.
func (b *Block) InstallWatchdog(w *health.Watchdog) {
	b.watch = w
	if w == nil {
		return
	}
	b.hMin = b.G.MinSpacing()
	n := 1
	for a := 0; a < 3; a++ {
		if e := b.G.Dim(grid.Axis(a)); e > n {
			n = e
		}
	}
	b.hSlots = make([]hAcc, n)
	maxN := w.Config().SliceMax
	w.SetSliceSource(func() health.Slice { return b.healthSlice(maxN) })
}

// Watchdog returns the installed watchdog (nil when none).
func (b *Block) Watchdog() *health.Watchdog { return b.watch }

// watchArmed reports whether faults should become violations rather than
// panics. Called only on the fault path, so its atomic load costs nothing
// on healthy steps.
func (b *Block) watchArmed() bool { return b.watch != nil && b.watch.Armed() }

// recordFault captures the first would-be panic of a tiled kernel as a
// structured violation. Workers record under a mutex; the owner reads
// b.fault without locking after the kernel's WaitGroup barrier
// (happens-before), so the healthy path never touches the lock.
// Primitive sweeps cover ghost layers, so the first cell to fault may be a
// periodic (or halo) image of the bad cell; the global coordinates wrap to
// the owning interior cell.
func (b *Block) recordFault(check, quantity string, value float64, i, j, k int, msg string) {
	step := b.Step
	if b.inStep {
		step++ // the step being computed, matching the end-of-step sample
	}
	g := b.cfg.Grid
	cell := [3]int{
		wrapCell(i+b.i0, g.Nx),
		wrapCell(j+b.j0, g.Ny),
		wrapCell(k+b.k0, g.Nz),
	}
	b.faultMu.Lock()
	if b.fault == nil {
		b.fault = &health.Violation{
			Check: check, Rank: b.Rank(), Step: step,
			Cell:     cell,
			Quantity: quantity, Value: health.F(value), Message: msg,
		}
	}
	b.faultMu.Unlock()
}

// wrapCell maps a global coordinate that may lie in a ghost image back into
// [0, n).
func wrapCell(x, n int) int {
	if n <= 0 {
		return x
	}
	x %= n
	if x < 0 {
		x += n
	}
	return x
}

// nanInjection is the test hook behind InjectNaNAt.
type nanInjection struct{ step, i, j, k int }

// InjectNaNAt plants a NaN into the conserved energy at local cell
// (i, j, k) at the start of step number step — a test hook for the
// watchdog, flight recorder and cross-rank abort paths.
func (b *Block) InjectNaNAt(step, i, j, k int) {
	b.inj = &nanInjection{step: step, i: i, j: j, k: k}
}

// hExt tracks one extremum and the global cell attaining it.
type hExt struct {
	v float64
	c [3]int
}

// hAcc is one tile's health accumulator. Tiles write disjoint slots;
// the owner merges them in ascending tile order so the mass/energy sums
// are bitwise deterministic for any worker count (the same ordered-slot
// scheme as Plan.RunReduce).
type hAcc struct {
	nan     int
	nanCell [3]int
	nanVar  int

	rhoMin, rhoMax hExt
	tMin, tMax     hExt
	pMin, pMax     hExt
	yMin, yMax     hExt
	yClip          hExt
	speed, diff    hExt

	mass, energy float64
}

// healthTiles mirrors the plan's tile decomposition of the interior: one
// plane per tile along the axis par picks (largest extent).
func (b *Block) healthTiles(r par.Range) int {
	n := 1
	for a := 0; a < 3; a++ {
		if e := r.Ext(a); e > n {
			n = e
		}
	}
	return n
}

// conservedQuantity names conserved variable v for violations: the
// registry's stable checkpoint name of the v-th conserved register (the Q
// bank occupies ids [0, nvar) by registration order).
func (b *Block) conservedQuantity(v int) string {
	return b.fs.Meta(v).Ckpt
}

// healthSample runs the fused health sweep over the interior: NaN scan of
// the conserved state, primitive extrema with locations, unclipped
// mass-fraction bounds, CFL estimates and the conserved volume integrals.
// Primitives are sampled as the final RK stage left them (the same
// convention as the telemetry extrema); the NaN scan and the integrals
// see the end-of-step conserved state.
func (b *Block) healthSample(dt float64) health.Sample {
	r := b.interior()
	gamma := b.watch.Config().Gamma
	n := b.healthTiles(r)
	slots := b.hSlots[:n]
	qr, qe := b.Q[iRho].Data, b.Q[iRhoE].Data
	ur, vr, wr, pr, tr := b.U.Data, b.V.Data, b.W.Data, b.P.Data, b.T.Data
	ns, nvar := b.ns, b.nvar
	// Hoist the per-variable data slices out of the per-cell loops: the
	// sweep reads every conserved field at every cell, and the armed
	// watchdog budget is 2% of a full step. The transport fields (μ, D) may
	// be float32 under the mixed policy, so both widths are hoisted and the
	// diffusion-CFL block branches once per cell on narrowTr.
	qd := make([][]float64, nvar)
	for v := 0; v < nvar; v++ {
		qd[v] = b.Q[v].Data
	}
	narrowTr := b.Mu.Data32 != nil
	mur, mur32 := b.Mu.Data, b.Mu.Data32
	var dd [][]float64
	var dd32 [][]float32
	if narrowTr {
		dd32 = make([][]float32, ns)
		for nsp := 0; nsp < ns; nsp++ {
			dd32[nsp] = b.D[nsp].Data32
		}
	} else {
		dd = make([][]float64, ns)
		for nsp := 0; nsp < ns; nsp++ {
			dd[nsp] = b.D[nsp].Data
		}
	}
	wx, wy, wz := b.volW[0], b.volW[1], b.volW[2]
	b.plan.Run("HEALTH", r, func(t par.Tile, _ int) {
		a := &slots[t.Index]
		*a = hAcc{
			nanVar: -1,
			rhoMin: hExt{v: math.Inf(1)}, rhoMax: hExt{v: math.Inf(-1)},
			tMin: hExt{v: math.Inf(1)}, tMax: hExt{v: math.Inf(-1)},
			pMin: hExt{v: math.Inf(1)}, pMax: hExt{v: math.Inf(-1)},
			yMin: hExt{v: math.Inf(1)}, yMax: hExt{v: math.Inf(-1)},
		}
		for k := t.Lo[2]; k < t.Hi[2]; k++ {
			for j := t.Lo[1]; j < t.Hi[1]; j++ {
				idx := b.Rho.Idx(t.Lo[0], j, k)
				wyz := wy[j] * wz[k]
				for i := t.Lo[0]; i < t.Hi[0]; i++ {
					gc := [3]int{i + b.i0, j + b.j0, k + b.k0}

					// NaN/Inf scan of every conserved variable: x−x is 0
					// for finite x, NaN for NaN and ±Inf.
					for v := 0; v < nvar; v++ {
						val := qd[v][idx]
						if val-val != 0 {
							if a.nan == 0 {
								a.nanCell, a.nanVar = gc, v
							}
							a.nan++
						}
					}

					rho := qr[idx]
					a.rhoMin.take(rho, gc, rho < a.rhoMin.v)
					a.rhoMax.take(rho, gc, rho > a.rhoMax.v)
					T := tr[idx]
					a.tMin.take(T, gc, T < a.tMin.v)
					a.tMax.take(T, gc, T > a.tMax.v)
					p := pr[idx]
					a.pMin.take(p, gc, p < a.pMin.v)
					a.pMax.take(p, gc, p > a.pMax.v)

					vol := wx[i] * wyz
					a.mass += rho * vol
					a.energy += qe[idx] * vol

					if rho > 0 {
						inv := 1 / rho
						sum, clip := 0.0, 0.0
						for nsp := 0; nsp < ns-1; nsp++ {
							y := qd[iY0+nsp][idx] * inv
							a.yMin.take(y, gc, y < a.yMin.v)
							a.yMax.take(y, gc, y > a.yMax.v)
							sum += y
							if y < 0 {
								clip -= y
							}
						}
						yLast := 1 - sum
						a.yMin.take(yLast, gc, yLast < a.yMin.v)
						a.yMax.take(yLast, gc, yLast > a.yMax.v)
						if yLast < 0 {
							clip -= yLast
						}
						a.yClip.take(clip, gc, clip > a.yClip.v)

						if p > 0 {
							s := math.Abs(ur[idx]) + math.Abs(vr[idx]) + math.Abs(wr[idx]) +
								math.Sqrt(gamma*p*inv)
							a.speed.take(s, gc, s > a.speed.v)
							var d float64
							if narrowTr {
								d = float64(mur32[idx]) * inv
								for nsp := 0; nsp < ns; nsp++ {
									if dv := float64(dd32[nsp][idx]); dv > d {
										d = dv
									}
								}
							} else {
								d = mur[idx] * inv
								for nsp := 0; nsp < ns; nsp++ {
									if dv := dd[nsp][idx]; dv > d {
										d = dv
									}
								}
							}
							a.diff.take(d, gc, d > a.diff.v)
						}
					}
					idx++
				}
			}
		}
	})

	// Merge in ascending tile order (deterministic sums and tie-breaks).
	m := slots[0]
	for si := 1; si < n; si++ {
		s := &slots[si]
		if m.nan == 0 && s.nan > 0 {
			m.nanCell, m.nanVar = s.nanCell, s.nanVar
		}
		m.nan += s.nan
		m.rhoMin.merge(s.rhoMin, s.rhoMin.v < m.rhoMin.v)
		m.rhoMax.merge(s.rhoMax, s.rhoMax.v > m.rhoMax.v)
		m.tMin.merge(s.tMin, s.tMin.v < m.tMin.v)
		m.tMax.merge(s.tMax, s.tMax.v > m.tMax.v)
		m.pMin.merge(s.pMin, s.pMin.v < m.pMin.v)
		m.pMax.merge(s.pMax, s.pMax.v > m.pMax.v)
		m.yMin.merge(s.yMin, s.yMin.v < m.yMin.v)
		m.yMax.merge(s.yMax, s.yMax.v > m.yMax.v)
		m.yClip.merge(s.yClip, s.yClip.v > m.yClip.v)
		m.speed.merge(s.speed, s.speed.v > m.speed.v)
		m.diff.merge(s.diff, s.diff.v > m.diff.v)
		m.mass += s.mass
		m.energy += s.energy
	}

	out := health.Sample{
		Step: b.Step, Time: health.F(b.Time), Dt: health.F(dt),
		NaNCount: m.nan, NaNCell: m.nanCell,
		RhoMin: ext(m.rhoMin), RhoMax: ext(m.rhoMax),
		TMin: ext(m.tMin), TMax: ext(m.tMax),
		PMin: ext(m.pMin), PMax: ext(m.pMax),
		YMin: ext(m.yMin), YMax: ext(m.yMax), YClip: ext(m.yClip),
		Mass: health.F(m.mass), Energy: health.F(m.energy),
	}
	if m.nanVar >= 0 {
		out.NaNQuantity = b.conservedQuantity(m.nanVar)
	}
	dim := 0
	for a := 0; a < 3; a++ {
		if b.G.Dim(grid.Axis(a)) > 1 {
			dim++
		}
	}
	out.CFLAcoustic = health.Extremum{V: health.F(dt * m.speed.v / b.hMin), Cell: m.speed.c}
	out.CFLDiffusive = health.Extremum{
		V: health.F(2 * float64(dim) * dt * m.diff.v / (b.hMin * b.hMin)), Cell: m.diff.c,
	}
	return out
}

// take replaces the extremum when better is true.
func (e *hExt) take(v float64, c [3]int, better bool) {
	if better {
		e.v, e.c = v, c
	}
}

// merge folds another tile's extremum in when better is true.
func (e *hExt) merge(o hExt, better bool) {
	if better {
		*e = o
	}
}

func ext(e hExt) health.Extremum { return health.Extremum{V: health.F(e.v), Cell: e.c} }

// healthCheck evaluates the armed watchdog at the end of a step. In
// decomposed runs it first reduces the conserved integrals globally, then
// allreduces a (level, rank+1) status word so every rank returns from the
// same step: the faulting rank completed the step's full communication
// pattern before this point, so no neighbour is left blocked.
func (b *Block) healthCheck(dt float64) error {
	reg := b.beginRegion("HEALTH")
	s := b.healthSample(dt)
	if b.cart != nil {
		v := []float64{float64(s.Mass), float64(s.Energy)}
		b.cart.Comm.Allreduce(comm.Sum, v)
		s.Mass, s.Energy = health.F(v[0]), health.F(v[1])
	}
	viol := b.watch.Evaluate(&s, b.fault)
	reg.End()
	if b.cart != nil {
		word := []float64{0, 0}
		if viol != nil {
			word[0], word[1] = float64(health.Fatal), float64(b.Rank()+1)
		}
		b.cart.Comm.Allreduce(comm.Max, word)
		if viol == nil && word[0] >= float64(health.Fatal) {
			viol = health.Remote(int(word[1])-1, b.Step)
			b.watch.NoteRemote(viol)
		}
	}
	if viol != nil {
		return viol
	}
	return nil
}

// healthSlice captures the flight-recorder field slice: the temperature
// mid-z plane, downsampled to at most maxN points per axis.
func (b *Block) healthSlice(maxN int) health.Slice {
	nx, ny := b.G.Nx, b.G.Ny
	kMid := b.G.Nz / 2
	sx, sy := (nx+maxN-1)/maxN, (ny+maxN-1)/maxN
	if sx < 1 {
		sx = 1
	}
	if sy < 1 {
		sy = 1
	}
	onx, ony := (nx+sx-1)/sx, (ny+sy-1)/sy
	sl := health.Slice{Name: "T@z=mid", Nx: onx, Ny: ony, Data: make([]health.F, 0, onx*ony)}
	for j := 0; j < ny; j += sy {
		for i := 0; i < nx; i += sx {
			sl.Data = append(sl.Data, health.F(b.T.At(i, j, kMid)))
		}
	}
	return sl
}
