package solver

import (
	"bytes"
	"hash/fnv"
	"math"
	"os"
	"sort"
	"testing"

	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/par"
	"github.com/s3dgo/s3d/internal/sdf"
)

// seedSolutionHash is the FNV-1a hash of the decomposed reacting case's
// solution bits (rank-sorted Q fields, heat release, total mass after ten
// steps; see solutionHash) recorded on the pre-registry solver, whose
// fields were ~60 independent allocations. The arena layout must reproduce
// it exactly: registry storage is a pure re-homing of the same floats.
const seedSolutionHash uint64 = 0xe334b76af311e9b5

func solutionHash(ranks []rankState) uint64 {
	sort.Slice(ranks, func(a, b int) bool {
		ra, rb := ranks[a], ranks[b]
		if ra.k0 != rb.k0 {
			return ra.k0 < rb.k0
		}
		if ra.j0 != rb.j0 {
			return ra.j0 < rb.j0
		}
		return ra.i0 < rb.i0
	})
	h := fnv.New64a()
	var buf [8]byte
	put := func(u uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(u >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, r := range ranks {
		for _, vq := range r.q {
			for _, bits := range vq {
				put(bits)
			}
		}
		put(r.hrr)
		put(r.mass)
	}
	return h.Sum64()
}

// TestArenaLayoutBitCompatibility pins the solver output against the
// pre-registry (seed) layout: ten steps of the decomposed reacting case,
// with one worker and with four, must hash to the value recorded before
// fields moved into the FieldSet arena.
func TestArenaLayoutBitCompatibility(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run reacting case")
	}
	for _, workers := range []int{1, 4} {
		if h := solutionHash(runDecomposed(t, workers)); h != seedSolutionHash {
			t.Fatalf("workers=%d: solution hash %#016x, seed layout gave %#016x",
				workers, h, seedSolutionHash)
		}
	}
}

// TestCheckpointOrderingStable pins the on-disk checkpoint ABI: variable
// names and their order come from the registry's checkpoint list and must
// never drift, or old restart files stop loading in sequence-sensitive
// consumers (the pario/cmd write paths iterate this order).
func TestCheckpointOrderingStable(t *testing.T) {
	b, err := NewSerial(checkpointConfig())
	if err != nil {
		t.Fatal(err)
	}
	seedCheckpointState(b)
	var buf bytes.Buffer
	if err := b.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := sdf.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"rho", "rhou", "rhov", "rhow", "rhoE",
		// H2Air transported species (last species N2 recovered from ΣY=1).
		"rhoY_H2", "rhoY_O2", "rhoY_O", "rhoY_OH", "rhoY_H2O",
		"rhoY_H", "rhoY_HO2", "rhoY_H2O2",
		"T_guess",
		"T_guess_halo",
	}
	if len(f.Vars) != len(want) {
		t.Fatalf("checkpoint has %d variables, want %d", len(f.Vars), len(want))
	}
	for i, v := range f.Vars {
		if v.Name != want[i] {
			t.Fatalf("checkpoint variable %d is %q, want %q (on-disk order is ABI)", i, v.Name, want[i])
		}
	}
}

// TestLoadPreRegistryCheckpoint loads a restart file written by the
// pre-registry solver (testdata/checkpoint_prereg.sdf: the serial
// checkpointConfig case advanced three steps) and checks the restored
// state bit-for-bit via interior sums recorded at write time.
func TestLoadPreRegistryCheckpoint(t *testing.T) {
	raw, err := os.ReadFile("testdata/checkpoint_prereg.sdf")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSerial(checkpointConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LoadCheckpoint(bytes.NewReader(raw)); err != nil {
		t.Fatalf("pre-registry checkpoint no longer loads: %v", err)
	}
	if b.Step != 3 {
		t.Fatalf("restored step %d, want 3", b.Step)
	}
	if bits := math.Float64bits(b.Time); bits != 0x3eae32f0ee144531 {
		t.Fatalf("restored time bits %#x", bits)
	}
	var qsum float64
	for v := 0; v < b.nvar; v++ {
		qsum += b.Q[v].SumInterior()
	}
	if bits := math.Float64bits(qsum); bits != 0x41758616349da657 {
		t.Fatalf("conserved-state sum bits %#x, want %#x", bits, uint64(0x41758616349da657))
	}
	if bits := math.Float64bits(b.T.SumInterior()); bits != 0x410110d060df203f {
		t.Fatalf("T_guess sum bits %#x, want %#x", bits, uint64(0x410110d060df203f))
	}
	// The restored state must advance: a checkpoint is only as good as the
	// trajectory it resumes.
	b.Advance(1, 3e-7)
}

// TestDecomposedCheckpointRoundTrip runs the registry save/load path on
// every rank of a decomposed reacting run: a run split by per-rank
// checkpoint/restore must match the uninterrupted run bit-for-bit.
func TestDecomposedCheckpointRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run reacting case")
	}
	pool := par.NewPool(4)
	defer pool.Close()
	cfg := reactiveConfig()
	cfg.Pool = pool
	dt := 2e-8

	type snap struct {
		i0, j0, k0 int
		ckpt       []byte
		q          [][]uint64
	}
	byOffset := func(s []snap) map[[3]int]*snap {
		m := map[[3]int]*snap{}
		for i := range s {
			m[[3]int{s[i].i0, s[i].j0, s[i].k0}] = &s[i]
		}
		return m
	}
	collect := func(body func(b *Block) snap) []snap {
		ch := make(chan snap, 4)
		if err := RunParallel(cfg, [3]int{2, 2, 1}, func(b *Block) {
			hotSpotIC(b)
			ch <- body(b)
		}); err != nil {
			t.Fatal(err)
		}
		close(ch)
		var out []snap
		for s := range ch {
			out = append(out, s)
		}
		return out
	}
	qBits := func(b *Block) [][]uint64 {
		q := make([][]uint64, b.nvar)
		for v := 0; v < b.nvar; v++ {
			for k := 0; k < b.G.Nz; k++ {
				for j := 0; j < b.G.Ny; j++ {
					for i := 0; i < b.G.Nx; i++ {
						q[v] = append(q[v], math.Float64bits(b.Q[v].At(i, j, k)))
					}
				}
			}
		}
		return q
	}

	// Uninterrupted: 6 steps.
	cont := byOffset(collect(func(b *Block) snap {
		b.Advance(6, dt)
		return snap{i0: b.i0, j0: b.j0, k0: b.k0, q: qBits(b)}
	}))
	// First half: 3 steps, then checkpoint every rank.
	half := byOffset(collect(func(b *Block) snap {
		b.Advance(3, dt)
		var buf bytes.Buffer
		if err := b.SaveCheckpoint(&buf); err != nil {
			panic(err)
		}
		return snap{i0: b.i0, j0: b.j0, k0: b.k0, ckpt: buf.Bytes()}
	}))
	// Second half: restore each rank from its checkpoint, 3 more steps.
	final := collect(func(b *Block) snap {
		s := half[[3]int{b.i0, b.j0, b.k0}]
		if s == nil {
			panic("no checkpoint for rank offset")
		}
		if err := b.LoadCheckpoint(bytes.NewReader(s.ckpt)); err != nil {
			panic(err)
		}
		if b.Step != 3 {
			panic("restored step wrong")
		}
		b.Advance(3, dt)
		return snap{i0: b.i0, j0: b.j0, k0: b.k0, q: qBits(b)}
	})

	for _, g := range final {
		ref := cont[[3]int{g.i0, g.j0, g.k0}]
		if ref == nil {
			t.Fatalf("no continuous rank at offset (%d,%d,%d)", g.i0, g.j0, g.k0)
		}
		for v := range g.q {
			for p := range g.q[v] {
				if g.q[v][p] != ref.q[v][p] {
					t.Fatalf("rank(%d,%d,%d): restart diverges at Q[%d] flat %d: %x vs %x",
						g.i0, g.j0, g.k0, v, p, g.q[v][p], ref.q[v][p])
				}
			}
		}
	}
}

// TestBlockRegistryInventory sanity-checks the registry threading: named
// struct fields alias registry storage, groups match the hoisted halo
// lists, and the conserved bank spans alias the Q registers.
func TestBlockRegistryInventory(t *testing.T) {
	b, err := NewSerial(checkpointConfig())
	if err != nil {
		t.Fatal(err)
	}
	fs := b.Fields()
	if fs.ByName("T") != b.T || fs.ByName("rho") != b.Rho || fs.ByName("Q_rho") != b.Q[iRho] {
		t.Fatal("registry names do not alias the block's field views")
	}
	if b.FieldByName("Y_OH") != b.Y[b.mech.Set.Index("OH")] {
		t.Fatal("species primitive not resolvable by name")
	}
	if got := len(fs.Group(haloGroupConserved)); got != b.nvar {
		t.Fatalf("conserved halo group has %d fields, want %d", got, b.nvar)
	}
	if got := len(fs.Group(haloGroupFlux)); got != 3*b.nvar {
		t.Fatalf("flux halo group has %d fields, want %d", got, 3*b.nvar)
	}
	// Bank span aliasing: writes through Q land in qBank.
	b.Q[iRhoE].Set(1, 2, 0, 12345)
	off := iRhoE*fs.FieldLen() + b.Q[iRhoE].Idx(1, 2, 0)
	if b.qBank[off] != 12345 {
		t.Fatal("qBank does not alias the Q registers")
	}
	// Every field is arena-backed: no stray NewField3 allocations remain.
	if fs.Len() == 0 || fs.FieldLen() != len(b.T.Data) {
		t.Fatal("registry arena shape inconsistent")
	}
	var _ *grid.Field3 = b.naiveT1
	if fs.ByName("naive_t1") != b.naiveT1 || fs.ByName("filter_scratch") != b.scratchF {
		t.Fatal("scratch fields not registered")
	}
}
