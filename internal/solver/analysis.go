package solver

// The solver side of the in-situ analysis pipeline (internal/insitu): the
// registered operators run as one fused sweep over the interior — one tile
// pass, one flat index shared by every registered field — into ordered
// per-tile accumulator rows the owner merges in ascending tile order, then
// reduces cross-rank in ascending rank order. The statistics are therefore
// bitwise identical for any worker count and any rank count, the same
// contract the health sweep keeps.

import (
	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/insitu"
	"github.com/s3dgo/s3d/internal/par"
)

// InstallAnalysis attaches a fully registered pipeline to the block. Call
// after every Register; the slot layout is frozen here (per-tile rows plus
// the merged vector with its trailing heat-release slot). Pass nil to
// detach. In decomposed runs every rank must install an identically
// configured pipeline at the same point: a due step adds one collective,
// which must match across ranks.
func (b *Block) InstallAnalysis(p *insitu.Pipeline) {
	b.analysis = p
	b.aSlots, b.aSub, b.aAcc = nil, nil, nil
	if p == nil {
		return
	}
	n := 1
	for a := 0; a < 3; a++ {
		if e := b.G.Dim(grid.Axis(a)); e > n {
			n = e
		}
	}
	total := p.TotalSlots()
	ops := p.Ops()
	b.aSlots = make([][]float64, n)
	b.aSub = make([][][]float64, n)
	for t := 0; t < n; t++ {
		row := make([]float64, total)
		b.aSlots[t] = row
		sub := make([][]float64, len(ops))
		for oi, bo := range ops {
			sub[oi] = row[bo.Off:bo.End]
		}
		b.aSub[t] = sub
	}
	b.aAcc = make([]float64, total+1) // +1: the piggybacked heat-release integral
}

// Analysis returns the installed pipeline (nil when none).
func (b *Block) Analysis() *insitu.Pipeline { return b.analysis }

// analysisStep runs the fused reduction sweep for a due step: tile pass,
// ordered tile merge, ordered cross-rank reduction, publish. Runs after
// the health check passed, so all ranks reach it on the same step.
func (b *Block) analysisStep() {
	if !b.aDue {
		return
	}
	b.aDue = false
	p := b.analysis
	reg := b.beginRegion("ANALYSIS")
	r := b.interior()
	n := b.healthTiles(r)
	ops := p.Ops()
	wx, wy, wz := b.volW[0], b.volW[1], b.volW[2]
	b.plan.Run("ANALYSIS", r, func(t par.Tile, _ int) {
		sub := b.aSub[t.Index]
		for oi := range ops {
			ops[oi].Op.Init(sub[oi])
		}
		for k := t.Lo[2]; k < t.Hi[2]; k++ {
			for j := t.Lo[1]; j < t.Hi[1]; j++ {
				idx := b.Rho.Idx(t.Lo[0], j, k)
				wyz := wy[j] * wz[k]
				for i := t.Lo[0]; i < t.Hi[0]; i++ {
					vol := wx[i] * wyz
					for oi := range ops {
						ops[oi].Kern(sub[oi], idx, vol)
					}
					idx++
				}
			}
		}
	})

	// Merge in ascending tile order (bitwise-deterministic sums).
	total := p.TotalSlots()
	acc := b.aAcc
	copy(acc[:total], b.aSlots[0])
	for si := 1; si < n; si++ {
		p.MergeVec(acc[:total], b.aSlots[si])
	}
	acc[total] = b.hrrAcc

	if b.cart != nil {
		// Ascending rank order — unlike Allreduce's arrival-order fold —
		// so decomposed statistics are run-to-run reproducible too.
		if err := b.cart.Comm.AllreduceOrdered(acc, func(dst, src []float64) {
			p.MergeVec(dst[:total], src[:total])
			dst[total] += src[total]
		}); err != nil {
			panic(err) // converted to a Run error by comm's rank recovery
		}
	}

	var extras []insitu.Product
	if p.WantHeatRelease() {
		extras = []insitu.Product{{
			Op:   "scalar",
			Name: "heat_release",
			Scalars: map[string]float64{
				"watts": acc[total],
			},
		}}
	}
	p.Publish(b.Step, b.Time, acc[:total], extras)
	reg.End()
}

// fieldBinder resolves insitu sources against the block's field registry.
// Every registered field shares the arena's index mapping, so a source is
// a direct read of the field's storage at the sweep's flat index.
type fieldBinder struct{ b *Block }

// NewBinder returns an insitu.Binder over the block's registered fields.
func (b *Block) NewBinder() insitu.Binder { return fieldBinder{b} }

// Source implements insitu.Binder. Narrow-storage fields (mixed policy)
// widen on read; analysis arithmetic stays float64 either way.
func (fb fieldBinder) Source(name string) (insitu.Source, error) {
	f := fb.b.FieldByName(name)
	if f == nil {
		return nil, &UnknownFieldError{Name: name}
	}
	if f.Data32 != nil {
		data := f.Data32
		return func(idx int) float64 { return float64(data[idx]) }, nil
	}
	data := f.Data
	return func(idx int) float64 { return data[idx] }, nil
}

// UnknownFieldError reports an analysis subscription against a field name
// absent from the registry.
type UnknownFieldError struct{ Name string }

func (e *UnknownFieldError) Error() string {
	return "solver: no registered field " + e.Name + " (see the /fields inventory for valid names)"
}
