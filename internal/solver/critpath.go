package solver

// The solver side of the cross-rank wait-state and critical-path analyzer
// (internal/critpath): a due step arms the block's comm event trace and
// opens a window on the analyzer clock; after the step's health check and
// reductions, critStep drains the trace and deposits it at the shared
// analyzer, whose barrier publishes the analyzed record before any rank
// resumes stepping.

import (
	"time"

	"github.com/s3dgo/s3d/internal/critpath"
)

// InstallCritPath attaches the run's shared critpath analyzer to the block
// (pass nil to detach). In decomposed runs every rank must install the SAME
// analyzer — it doubles as the deposit barrier — and the analyzer adopts
// the comm world's clock so comm events and step windows share a timebase.
// Blocks without a profiler track of their own get a rank track on the
// analyzer's internal profiler, so blame attribution works either way.
func (b *Block) InstallCritPath(a *critpath.Analyzer) error {
	if a == nil {
		b.critA = nil
		return nil
	}
	if b.cart != nil {
		w := b.cart.Comm.World()
		if err := a.Register(w.Size(), w.Epoch(), true); err != nil {
			return err
		}
		// A rank that dies mid-step must not strand its peers in the
		// deposit barrier.
		a.BindAbort(w.OnAbort, w.Aborted)
	} else if err := a.Register(1, time.Time{}, false); err != nil {
		return err
	}
	if b.profT == nil {
		b.EnableProfiling(a.InternalRankTrack(b.Rank()))
	}
	b.critA = a
	return nil
}

// CritPath returns the installed analyzer (nil when none).
func (b *Block) CritPath() *critpath.Analyzer { return b.critA }

// critArm opens the collection window for the step about to run: the
// analyzer arms (enabling its internal profiler if blame runs on it), the
// window-open timestamp is taken on the analyzer clock, and the block's
// communicator starts recording point-to-point and collective envelopes
// stamped with the step context.
func (b *Block) critArm() {
	b.critA.ArmStep()
	b.critStart = b.critA.NowNs()
	if b.cart != nil {
		b.cart.Comm.SetStepContext(b.Step+1, 0)
		b.cart.Comm.ArmTrace(true)
	}
}

// critStage stamps the running RK stage onto traced comm envelopes.
func (b *Block) critStage(stage int) {
	if b.critDue && b.cart != nil {
		b.cart.Comm.SetStepContext(b.Step+1, stage)
	}
}

// critStep deposits a due step's drained trace at the shared analyzer and
// blocks until the step is analyzed — the deposit doubles as a step
// barrier, so every rank sees the published record (and rank 0's store has
// flushed) before stepping on. Runs after the health check and the other
// reductions, so all ranks reach it on the same step.
func (b *Block) critStep() {
	if !b.critDue {
		return
	}
	b.critDue = false
	a := b.critA
	end := a.NowNs()
	d := critpath.Deposit{
		Rank: b.Rank(), Step: b.Step, Time: b.Time,
		StartNs: b.critStart, EndNs: end, Track: b.profT,
	}
	if b.cart != nil {
		d.PtP, d.Coll = b.cart.Comm.DrainTrace()
		b.cart.Comm.ArmTrace(false)
	}
	a.Deposit(d)
}

// SetStragglerDelay injects an artificial per-stage delay into this rank's
// chemistry sweep (zero disables) — the validation hook for the critpath
// analyzer and the cost imbalance analytics: a slowed rank must show up as
// the critical-path owner with its peers in late-sender waits.
func (b *Block) SetStragglerDelay(d time.Duration) { b.stragglerDelay = d }

// CommWaitByPeer returns this rank's cumulative Wait-blocked nanoseconds by
// peer rank (nil on serial runs). The counters accumulate whether or not
// the critpath analyzer is armed.
func (b *Block) CommWaitByPeer() []int64 {
	if b.cart == nil {
		return nil
	}
	return b.cart.Comm.World().WaitByPeer(b.Rank())
}
