package solver

import (
	"math"
	"testing"

	"github.com/s3dgo/s3d/internal/chem"
	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/transport"
)

// Quantitative validation of the constitutive terms (paper §2.2–2.5):
// small-amplitude sinusoidal disturbances in a periodic box must decay at
// the analytic rates ν·k², α·k² and D·k² set by the stress tensor, heat
// flux and species diffusion implementations.

func physicsBox(t *testing.T, nx, ny int, l float64) (*Block, []float64) {
	t.Helper()
	mech := chem.H2Air()
	cfg := &Config{
		Mech:         mech,
		Trans:        transport.MustNew(mech.Set),
		Grid:         grid.New(grid.Spec{Nx: nx, Ny: ny, Nz: 1, Lx: l, Ly: l, Lz: l}),
		PInf:         101325,
		ChemistryOff: true,
	}
	b, err := NewSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, mech.NumSpecies())
	y[mech.Set.Index("O2")] = 0.233
	y[mech.Set.Index("N2")] = 0.767
	return b, y
}

// fitDecayRate measures ln(a0/a1)/dt for the amplitude of a quantity.
func fitDecayRate(a0, a1, elapsed float64) float64 {
	return math.Log(a0/a1) / elapsed
}

func TestShearDecayMatchesViscosity(t *testing.T) {
	// u(y) = U·sin(k·y) with no other gradients: pure shear diffusion,
	// du/dt = ν·∂²u/∂y² → amplitude decays at ν·k².
	l := 0.002
	b, yAir := physicsBox(t, 4, 48, l)
	// The mesh spans [0, L] inclusive, so the exactly periodic wavelength
	// is N·h = L·N/(N−1), not L.
	k := 2 * math.Pi / (l * 48 / 47)
	U := 0.5 // small: keep compressibility negligible
	b.SetState(func(x, y, z float64, s *InflowState) {
		s.U = U * math.Sin(k*y)
		s.T = 300
		copy(s.Y, yAir)
	}, nil)
	b.RefreshPrimitives()
	amp := func() float64 {
		var m float64
		for j := 0; j < b.G.Ny; j++ {
			if v := math.Abs(b.U.At(1, j, 0)); v > m {
				m = v
			}
		}
		return m
	}
	a0 := amp()
	dt := 0.4 * b.AcousticDt()
	steps := 200
	b.Advance(steps, dt)
	b.RefreshPrimitives()
	a1 := amp()
	elapsed := float64(steps) * dt

	rho := b.Rho.At(1, 1, 0)
	mu := b.Mu.At(1, 1, 0)
	want := mu / rho * k * k
	got := fitDecayRate(a0, a1, elapsed)
	if rel := math.Abs(got-want) / want; rel > 0.12 {
		t.Fatalf("shear decay rate %g, analytic ν·k² = %g (rel %.2f)", got, want, rel)
	}
}

func TestTemperatureDecayMatchesConductivity(t *testing.T) {
	// T = T0 + T'·sin(k·y) at uniform pressure: the disturbance decays at
	// α·k² with α = λ/(ρ·cp) (isobaric relaxation: pressure equilibrates
	// acoustically much faster than the thermal mode).
	l := 0.001
	b, yAir := physicsBox(t, 4, 48, l)
	k := 2 * math.Pi / (l * 48 / 47) // exactly periodic on the wrap period
	b.SetState(func(x, y, z float64, s *InflowState) {
		s.T = 500 + 2*math.Sin(k*y)
		copy(s.Y, yAir)
	}, nil)
	b.RefreshPrimitives()
	amp := func() float64 {
		lo, hi := b.T.MinMax()
		return (hi - lo) / 2
	}
	a0 := amp()
	dt := 0.4 * b.AcousticDt()
	steps := 400
	b.Advance(steps, dt)
	b.RefreshPrimitives()
	a1 := amp()
	elapsed := float64(steps) * dt

	rho := b.Rho.At(1, 1, 0)
	lam := b.Lambda.At(1, 1, 0)
	cp := b.mech.Set.CpMass(500, yAirOf(b))
	want := lam / (rho * cp) * k * k
	got := fitDecayRate(a0, a1, elapsed)
	if rel := math.Abs(got-want) / want; rel > 0.2 {
		t.Fatalf("thermal decay rate %g, analytic α·k² = %g (rel %.2f)", got, want, rel)
	}
}

func yAirOf(b *Block) []float64 {
	y := make([]float64, b.ns)
	for n := 0; n < b.ns; n++ {
		y[n] = b.Y[n].At(1, 1, 0)
	}
	return y
}

func TestSpeciesDecayMatchesDiffusivity(t *testing.T) {
	// A trace H2O sinusoid in air decays at D_H2O·k² (dilute limit).
	l := 0.001
	b, _ := physicsBox(t, 4, 48, l)
	k := 2 * math.Pi / (l * 48 / 47) // exactly periodic on the wrap period
	iH2O := b.mech.Set.Index("H2O")
	iO2 := b.mech.Set.Index("O2")
	iN2 := b.mech.Set.Index("N2")
	b.SetState(func(x, y, z float64, s *InflowState) {
		w := 0.005 * (1 + math.Sin(k*y))
		s.T = 400
		for i := range s.Y {
			s.Y[i] = 0
		}
		s.Y[iH2O] = w
		s.Y[iO2] = 0.233 * (1 - w)
		s.Y[iN2] = 1 - w - 0.233*(1-w)
	}, nil)
	b.RefreshPrimitives()
	amp := func() float64 {
		lo, hi := b.Y[iH2O].MinMax()
		return (hi - lo) / 2
	}
	a0 := amp()
	dt := 0.4 * b.AcousticDt()
	steps := 400
	b.Advance(steps, dt)
	b.RefreshPrimitives()
	a1 := amp()
	elapsed := float64(steps) * dt

	d := b.D[iH2O].At(1, 1, 0)
	want := d * k * k
	got := fitDecayRate(a0, a1, elapsed)
	// Dilute but not infinitely so; the ΣJ=0 correction shifts the rate a
	// few per cent.
	if rel := math.Abs(got-want) / want; rel > 0.2 {
		t.Fatalf("species decay rate %g, analytic D·k² = %g (rel %.2f)", got, want, rel)
	}
}

func TestTaylorGreenKineticEnergyDecay(t *testing.T) {
	// The 2-D Taylor–Green vortex: KE decays at 2·ν·(kx²+ky²)·... for the
	// velocity amplitude, i.e. d(KE)/dt = −2νk²·KE with k² = kx² + ky².
	l := 0.002
	b, yAir := physicsBox(t, 32, 32, l)
	k := 2 * math.Pi / (l * 32 / 31) // exactly periodic on the wrap period
	U := 0.8
	b.SetState(func(x, y, z float64, s *InflowState) {
		s.U = U * math.Sin(k*x) * math.Cos(k*y)
		s.V = -U * math.Cos(k*x) * math.Sin(k*y)
		s.T = 300
		copy(s.Y, yAir)
	}, nil)
	b.RefreshPrimitives()
	ke := func() float64 {
		var s float64
		for j := 0; j < b.G.Ny; j++ {
			for i := 0; i < b.G.Nx; i++ {
				u, v := b.U.At(i, j, 0), b.V.At(i, j, 0)
				s += u*u + v*v
			}
		}
		return s
	}
	e0 := ke()
	dt := 0.4 * b.AcousticDt()
	steps := 150
	b.Advance(steps, dt)
	b.RefreshPrimitives()
	e1 := ke()
	elapsed := float64(steps) * dt

	nu := b.Mu.At(1, 1, 0) / b.Rho.At(1, 1, 0)
	want := 2 * nu * 2 * k * k // KE rate: 2νk² per component pair
	got := fitDecayRate(e0, e1, elapsed)
	if rel := math.Abs(got-want) / want; rel > 0.12 {
		t.Fatalf("Taylor-Green KE decay %g, analytic %g (rel %.2f)", got, want, rel)
	}
}
