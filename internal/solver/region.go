package solver

import (
	"github.com/s3dgo/s3d/internal/prof"
)

// EnableProfiling attaches a call-path profiler track to the block: every
// instrumented kernel region opens a span on tr alongside its perf timer,
// and the block's communicator charges its MPI_* spans to the same track,
// so blocked communication time appears under the call path that blocked
// (GHOST_EXCHANGE/MPI_WAIT). The track must belong to this block's rank
// goroutine. Pass nil to detach.
func (b *Block) EnableProfiling(tr *prof.Track) {
	b.profT = tr
	if b.cart != nil {
		b.cart.Comm.AttachProfiler(tr)
	}
}

// ProfTrack returns the block's profiler track (nil when not profiling).
func (b *Block) ProfTrack() *prof.Track { return b.profT }

// region couples a figure-2 perf timer region with a call-path span, so the
// instrumented kernels keep one begin/end pair for both systems.
type region struct {
	b     *Block
	timer string
	sp    prof.Span
}

// beginRegion opens the named timer region and a span of the same name.
func (b *Block) beginRegion(name string) region {
	return b.beginRegionNamed(name, name)
}

// beginRegionNamed opens timer region timerName and a span named spanName
// (the divergence sweep shares the DERIVATIVES timer but gets its own
// DIVERGENCE span so the roofline can tell the two sweeps apart).
func (b *Block) beginRegionNamed(timerName, spanName string) region {
	b.Timers.Start(timerName)
	return region{b: b, timer: timerName, sp: b.profT.Begin(spanName)}
}

// End closes the span and the timer region.
func (r region) End() {
	r.sp.End()
	r.b.Timers.Stop(r.timer)
}
