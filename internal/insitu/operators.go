package insitu

import (
	"fmt"
	"math"
)

// Moments reduces a field to its volume-weighted mean, RMS and extrema.
// With Favre set, the mean and RMS are density-weighted (ρ-weighted —
// the compressible-flow averaging of the FPV literature); extrema are
// always unweighted.
type Moments struct {
	Field string
	Favre bool
}

// Slot layout: [sumW, sumWX, sumWX2, min, max, vol, cells].
const momentsSlots = 7

// Name returns the field name, suffixed _favre for Favre weighting.
func (m Moments) Name() string {
	if m.Favre {
		return m.Field + "_favre"
	}
	return m.Field
}

// Slots implements Operator.
func (m Moments) Slots() int { return momentsSlots }

// Bind implements Operator.
func (m Moments) Bind(b Binder) (Kernel, error) {
	src, err := b.Source(m.Field)
	if err != nil {
		return nil, err
	}
	if !m.Favre {
		return func(acc []float64, idx int, vol float64) {
			x := src(idx)
			acc[0] += vol
			acc[1] += vol * x
			acc[2] += vol * x * x
			if x < acc[3] {
				acc[3] = x
			}
			if x > acc[4] {
				acc[4] = x
			}
			acc[5] += vol
			acc[6]++
		}, nil
	}
	rho, err := b.Source("rho")
	if err != nil {
		return nil, err
	}
	return func(acc []float64, idx int, vol float64) {
		x := src(idx)
		w := rho(idx) * vol
		acc[0] += w
		acc[1] += w * x
		acc[2] += w * x * x
		if x < acc[3] {
			acc[3] = x
		}
		if x > acc[4] {
			acc[4] = x
		}
		acc[5] += vol
		acc[6]++
	}, nil
}

// Init implements Operator.
func (m Moments) Init(acc []float64) {
	for i := range acc {
		acc[i] = 0
	}
	acc[3] = math.Inf(1)
	acc[4] = math.Inf(-1)
}

// Merge implements Operator.
func (m Moments) Merge(dst, src []float64) {
	dst[0] += src[0]
	dst[1] += src[1]
	dst[2] += src[2]
	if src[3] < dst[3] {
		dst[3] = src[3]
	}
	if src[4] > dst[4] {
		dst[4] = src[4]
	}
	dst[5] += src[5]
	dst[6] += src[6]
}

// Finish implements Operator.
func (m Moments) Finish(acc []float64) Product {
	mean, rms := 0.0, 0.0
	if acc[0] > 0 {
		mean = acc[1] / acc[0]
		v := acc[2]/acc[0] - mean*mean
		if v > 0 {
			rms = math.Sqrt(v)
		}
	}
	return Product{
		Op:   "moments",
		Name: m.Name(),
		Scalars: map[string]float64{
			"mean":   mean,
			"rms":    rms,
			"min":    acc[3],
			"max":    acc[4],
			"weight": acc[0],
			"volume": acc[5],
			"cells":  acc[6],
		},
	}
}

// Hist reduces a field to a fixed-bin volume-weighted histogram. The
// bounds are explicit and frozen for the whole run — successive records
// share one axis and stay mutually comparable (the failure mode of the
// old auto-ranging in-situ histogram). Out-of-range samples clip to the
// end bins.
type Hist struct {
	Field  string
	Bins   int // 0 selects 32
	Lo, Hi float64
}

// Name implements Operator.
func (h Hist) Name() string { return h.Field }

func (h Hist) bins() int {
	if h.Bins <= 0 {
		return 32
	}
	return h.Bins
}

// Slots implements Operator.
func (h Hist) Slots() int { return h.bins() }

// Bind implements Operator.
func (h Hist) Bind(b Binder) (Kernel, error) {
	if !(h.Hi > h.Lo) {
		return nil, fmt.Errorf("insitu: histogram %q needs Hi > Lo (got [%g, %g])", h.Field, h.Lo, h.Hi)
	}
	src, err := b.Source(h.Field)
	if err != nil {
		return nil, err
	}
	n := h.bins()
	inv := float64(n) / (h.Hi - h.Lo)
	lo := h.Lo
	return func(acc []float64, idx int, vol float64) {
		bin := int((src(idx) - lo) * inv)
		if bin < 0 {
			bin = 0
		} else if bin >= n {
			bin = n - 1
		}
		acc[bin] += vol
	}, nil
}

// Init implements Operator.
func (h Hist) Init(acc []float64) {
	for i := range acc {
		acc[i] = 0
	}
}

// Merge implements Operator.
func (h Hist) Merge(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// Finish implements Operator.
func (h Hist) Finish(acc []float64) Product {
	total := 0.0
	for _, v := range acc {
		total += v
	}
	bins := make([]float64, len(acc))
	counts := make([]float64, len(acc))
	copy(counts, acc)
	if total > 0 {
		for i, v := range acc {
			bins[i] = v / total
		}
	}
	return Product{
		Op:      "hist",
		Name:    h.Name(),
		Lo:      h.Lo,
		Hi:      h.Hi,
		Bins:    bins,
		Counts:  counts,
		Scalars: map[string]float64{"weight": total},
	}
}

// Conditional reduces ⟨Of | On⟩: the conditional mean (and RMS) of one
// field binned against another — ⟨T|Z⟩, ⟨Y_OH|c⟩ — the workhorse product
// of flamelet-style analysis. Samples whose conditioning value falls
// outside [Lo, Hi] are dropped; the top edge is closed so On == Hi (e.g.
// Z = 1) lands in the last bin. With Favre set, means are ρ-weighted.
type Conditional struct {
	Of, On string
	Bins   int // 0 selects 32
	Lo, Hi float64
	Favre  bool
}

// Name implements Operator.
func (c Conditional) Name() string { return c.Of + "|" + c.On }

func (c Conditional) bins() int {
	if c.Bins <= 0 {
		return 32
	}
	return c.Bins
}

// Slots returns 4 blocks of Bins: [sumW | sumWX | sumWX2 | count].
func (c Conditional) Slots() int { return 4 * c.bins() }

// Bind implements Operator.
func (c Conditional) Bind(b Binder) (Kernel, error) {
	if !(c.Hi > c.Lo) {
		return nil, fmt.Errorf("insitu: conditional %q needs Hi > Lo (got [%g, %g])", c.Name(), c.Lo, c.Hi)
	}
	of, err := b.Source(c.Of)
	if err != nil {
		return nil, err
	}
	on, err := b.Source(c.On)
	if err != nil {
		return nil, err
	}
	var rho Source
	if c.Favre {
		if rho, err = b.Source("rho"); err != nil {
			return nil, err
		}
	}
	n := c.bins()
	inv := float64(n) / (c.Hi - c.Lo)
	lo, hi := c.Lo, c.Hi
	return func(acc []float64, idx int, vol float64) {
		cond := on(idx)
		if cond < lo || cond > hi {
			return
		}
		bin := int((cond - lo) * inv)
		if bin >= n {
			bin = n - 1 // closed top edge: cond == Hi joins the last bin
		}
		w := vol
		if rho != nil {
			w = rho(idx) * vol
		}
		x := of(idx)
		acc[bin] += w
		acc[n+bin] += w * x
		acc[2*n+bin] += w * x * x
		acc[3*n+bin]++
	}, nil
}

// Init implements Operator.
func (c Conditional) Init(acc []float64) {
	for i := range acc {
		acc[i] = 0
	}
}

// Merge implements Operator.
func (c Conditional) Merge(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// Finish implements Operator. Bins carries the conditional means (0 for
// empty bins), Counts the per-bin sample counts.
func (c Conditional) Finish(acc []float64) Product {
	n := c.bins()
	means := make([]float64, n)
	counts := make([]float64, n)
	samples := 0.0
	for i := 0; i < n; i++ {
		counts[i] = acc[3*n+i]
		samples += counts[i]
		if acc[i] > 0 {
			means[i] = acc[n+i] / acc[i]
		}
	}
	return Product{
		Op:      "cond",
		Name:    c.Name(),
		Lo:      c.Lo,
		Hi:      c.Hi,
		Bins:    means,
		Counts:  counts,
		Scalars: map[string]float64{"samples": samples},
	}
}

// GradMag integrates Scale·|∇f| over the domain from three pre-computed
// gradient component fields — the flame-surface-density proxy ∫|∇c| dV
// when the components are the progress-variable gradient. The gradients
// are whatever the final RK stage left in the registry's derivative
// fields.
type GradMag struct {
	Label  string    // product name, e.g. "flame_surface"
	Fields [3]string // gradient component field names
	Scale  float64   // 0 selects 1
}

// Name implements Operator.
func (g GradMag) Name() string { return g.Label }

// Slots returns 2: [integral, vol].
func (g GradMag) Slots() int { return 2 }

// Bind implements Operator.
func (g GradMag) Bind(b Binder) (Kernel, error) {
	var src [3]Source
	for a, name := range g.Fields {
		s, err := b.Source(name)
		if err != nil {
			return nil, err
		}
		src[a] = s
	}
	scale := g.Scale
	if scale == 0 {
		scale = 1
	}
	gx, gy, gz := src[0], src[1], src[2]
	return func(acc []float64, idx int, vol float64) {
		x, y, z := gx(idx), gy(idx), gz(idx)
		acc[0] += scale * math.Sqrt(x*x+y*y+z*z) * vol
		acc[1] += vol
	}, nil
}

// Init implements Operator.
func (g GradMag) Init(acc []float64) { acc[0], acc[1] = 0, 0 }

// Merge implements Operator.
func (g GradMag) Merge(dst, src []float64) { dst[0] += src[0]; dst[1] += src[1] }

// Finish implements Operator.
func (g GradMag) Finish(acc []float64) Product {
	mean := 0.0
	if acc[1] > 0 {
		mean = acc[0] / acc[1]
	}
	return Product{
		Op:   "gradmag",
		Name: g.Label,
		Scalars: map[string]float64{
			"integral": acc[0],
			"mean":     mean,
			"volume":   acc[1],
		},
	}
}

// VolumeFraction reduces a field to the fraction of domain volume where
// it exceeds a threshold — the reaction-zone (T > T_ign) or burnt-gas
// volume fraction.
type VolumeFraction struct {
	Label     string // product name, e.g. "reaction_zone"
	Field     string
	Threshold float64
}

// Name implements Operator.
func (v VolumeFraction) Name() string { return v.Label }

// Slots returns 2: [volAbove, vol].
func (v VolumeFraction) Slots() int { return 2 }

// Bind implements Operator.
func (v VolumeFraction) Bind(b Binder) (Kernel, error) {
	src, err := b.Source(v.Field)
	if err != nil {
		return nil, err
	}
	thr := v.Threshold
	return func(acc []float64, idx int, vol float64) {
		if src(idx) > thr {
			acc[0] += vol
		}
		acc[1] += vol
	}, nil
}

// Init implements Operator.
func (v VolumeFraction) Init(acc []float64) { acc[0], acc[1] = 0, 0 }

// Merge implements Operator.
func (v VolumeFraction) Merge(dst, src []float64) { dst[0] += src[0]; dst[1] += src[1] }

// Finish implements Operator.
func (v VolumeFraction) Finish(acc []float64) Product {
	frac := 0.0
	if acc[1] > 0 {
		frac = acc[0] / acc[1]
	}
	return Product{
		Op:   "volfrac",
		Name: v.Label,
		Scalars: map[string]float64{
			"fraction":     frac,
			"volume_above": acc[0],
			"threshold":    v.Threshold,
		},
	}
}
