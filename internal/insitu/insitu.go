// Package insitu is the science-reduction pipeline of the paper's §8
// workflow, rebuilt for the scale where raw field data cannot leave the
// node: analysis operators (global moments, fixed-bin histograms,
// conditional means ⟨T|Z⟩ and ⟨Y_k|c⟩ with Favre weighting, the |∇c|
// flame-surface integral, reaction-zone volume fractions) are registered
// against solver field-registry names, fused into the solver's tiled
// interior pass the way the health sweep is, and reduced cross-rank so
// every rank agrees on the step's statistics. Only the reduced products —
// a few hundred floats per step — ever leave the solver: to an append-only
// JSONL store, to the live monitor (GET /analysis, analysis_* Prometheus
// gauges) and to in-process subscribers.
//
// Determinism contract: operators accumulate into per-tile slot rows that
// the owner merges in ascending tile order, and the cross-rank reduction
// folds rank contributions in ascending rank order, so every statistic is
// bitwise reproducible for any worker count and any tile schedule — the
// same ordered-slot discipline as Plan.RunReduce and the health sweep.
package insitu

import (
	"encoding/json"
	"math"
	"net/http"
	"sync"
	"sync/atomic"

	"github.com/s3dgo/s3d/internal/obs"
)

// Source yields one per-cell value by flat arena index: a registered
// field's storage, or a derived variable (mixture fraction Z, progress c)
// the binding host computes on the fly.
type Source func(idx int) float64

// Binder resolves value sources by name at registration time. The solver
// host resolves registered field names through the field registry; the
// root API layers the derived science variables ("Z", "c") on top.
type Binder interface {
	Source(name string) (Source, error)
}

// Kernel folds one interior cell into an operator's accumulator slice.
// idx is the shared flat arena index of the cell (every registered field
// has identical strides); vol is the cell's quadrature volume.
type Kernel func(acc []float64, idx int, vol float64)

// Operator is one analysis reduction. Its accumulator is a fixed-length
// slice of float64 slots; Init/Merge define the slot semantics so the same
// Merge serves both the ordered tile merge and the ordered rank merge.
type Operator interface {
	// Name labels the operator instance ("T", "T|Z", "flame_surface").
	Name() string
	// Slots returns the accumulator length.
	Slots() int
	// Bind resolves the operator's inputs against the host's fields and
	// returns the per-cell kernel. Binding errors (unknown field, bad
	// bounds) surface at EnableAnalysis time, never mid-run.
	Bind(b Binder) (Kernel, error)
	// Init resets an accumulator slice before a sweep.
	Init(acc []float64)
	// Merge folds src into dst. Must be associative over ordered folds.
	Merge(dst, src []float64)
	// Finish converts a fully merged accumulator into the step's product.
	Finish(acc []float64) Product
}

// Product is one operator's finished result for a step. Scalar statistics
// live in Scalars; binned operators carry their axis and per-bin values.
// All values are sanitized to finite floats (JSON cannot carry NaN/Inf;
// arm the health watchdog to catch non-finite fields at the source).
type Product struct {
	Op      string             `json:"op"`   // operator kind: moments, hist, cond, gradmag, volfrac, scalar
	Name    string             `json:"name"` // instance label
	Scalars map[string]float64 `json:"scalars,omitempty"`
	Lo      float64            `json:"lo,omitempty"` // binned axis range
	Hi      float64            `json:"hi,omitempty"`
	Bins    []float64          `json:"bins,omitempty"`   // per-bin values (means / probabilities)
	Counts  []float64          `json:"counts,omitempty"` // per-bin sample counts
}

// Record is the full analysis document of one step — the unit the store
// appends, the monitor serves and subscribers receive.
type Record struct {
	Step     int       `json:"step"`
	Time     float64   `json:"time"`
	Products []Product `json:"products"`
}

// BoundOp is one registered operator with its kernel and its slot range in
// the pipeline's concatenated accumulator vector.
type BoundOp struct {
	Op       Operator
	Kern     Kernel
	Off, End int
}

// Pipeline owns the registered operator set and the fan-out of finished
// records. The solver holds one per block; a disabled pipeline costs the
// step loop a single atomic load.
type Pipeline struct {
	enabled atomic.Bool
	every   int
	wantHRR bool

	ops   []BoundOp
	total int

	mu     sync.Mutex
	subs   []func(Record)
	latest *Record
	reg    *obs.Registry
}

// NewPipeline creates an empty pipeline reducing every `every` steps
// (values below 1 select every step).
func NewPipeline(every int) *Pipeline {
	if every < 1 {
		every = 1
	}
	return &Pipeline{every: every}
}

// Every returns the reduction cadence in steps.
func (p *Pipeline) Every() int { return p.every }

// SetHeatRelease requests the heat-release volume integral as an extra
// scalar product (the host piggybacks it on the chemistry sweep).
func (p *Pipeline) SetHeatRelease(on bool) { p.wantHRR = on }

// WantHeatRelease reports whether the heat-release scalar was requested.
func (p *Pipeline) WantHeatRelease() bool { return p.wantHRR }

// Enable starts reductions; Disable stops them. Enabled is the one atomic
// load the solver pays per step when analysis is off.
func (p *Pipeline) Enable()       { p.enabled.Store(true) }
func (p *Pipeline) Disable()      { p.enabled.Store(false) }
func (p *Pipeline) Enabled() bool { return p.enabled.Load() }

// Due reports whether the pipeline reduces at the given (completed) step.
func (p *Pipeline) Due(step int) bool {
	return p.enabled.Load() && step > 0 && step%p.every == 0
}

// Register binds an operator against the host and appends it to the set.
// Call before the first step; the slot layout is append-only.
func (p *Pipeline) Register(op Operator, b Binder) error {
	kern, err := op.Bind(b)
	if err != nil {
		return err
	}
	off := p.total
	p.total += op.Slots()
	p.ops = append(p.ops, BoundOp{Op: op, Kern: kern, Off: off, End: p.total})
	return nil
}

// Ops returns the bound operator set in registration order.
func (p *Pipeline) Ops() []BoundOp { return p.ops }

// TotalSlots returns the length of the concatenated accumulator vector.
func (p *Pipeline) TotalSlots() int { return p.total }

// InitVec resets a full accumulator vector.
func (p *Pipeline) InitVec(acc []float64) {
	for _, bo := range p.ops {
		bo.Op.Init(acc[bo.Off:bo.End])
	}
}

// MergeVec folds a full accumulator vector into dst, operator by operator.
// Deterministic for a fixed fold order — the caller folds tiles and ranks
// in ascending order.
func (p *Pipeline) MergeVec(dst, src []float64) {
	for _, bo := range p.ops {
		bo.Op.Merge(dst[bo.Off:bo.End], src[bo.Off:bo.End])
	}
}

// Subscribe registers a callback invoked with every finished record, on
// the goroutine driving the simulation, in registration order.
func (p *Pipeline) Subscribe(fn func(Record)) {
	p.mu.Lock()
	p.subs = append(p.subs, fn)
	p.mu.Unlock()
}

// Publish finishes the merged accumulator into the step's record, appends
// any host-supplied extra products (the heat-release scalar), updates the
// attached gauges and fans the record out to subscribers.
func (p *Pipeline) Publish(step int, time float64, acc []float64, extras []Product) Record {
	rec := Record{Step: step, Time: time, Products: make([]Product, 0, len(p.ops)+len(extras))}
	for _, bo := range p.ops {
		rec.Products = append(rec.Products, sanitize(bo.Op.Finish(acc[bo.Off:bo.End])))
	}
	for _, ex := range extras {
		rec.Products = append(rec.Products, sanitize(ex))
	}
	p.mu.Lock()
	p.latest = &rec
	reg := p.reg
	subs := append(make([]func(Record), 0, len(p.subs)), p.subs...)
	p.mu.Unlock()
	if reg != nil {
		for _, pr := range rec.Products {
			for k, v := range pr.Scalars {
				reg.Gauge("analysis." + pr.Name + "." + k).Set(v)
			}
		}
	}
	for _, fn := range subs {
		fn(rec)
	}
	return rec
}

// Latest returns the most recent record (nil before the first reduction).
// Safe for concurrent readers.
func (p *Pipeline) Latest() *Record {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.latest
}

// AttachMetrics directs the analysis gauges (analysis.<name>.<scalar>) at
// a registry; they appear in /metrics and /metrics.prom as
// analysis_<name>_<scalar>.
func (p *Pipeline) AttachMetrics(reg *obs.Registry) {
	p.mu.Lock()
	p.reg = reg
	p.mu.Unlock()
}

// Handler serves the latest record as JSON — the live GET /analysis
// document on the telemetry monitor. Before the first reduction it serves
// an empty object.
func (p *Pipeline) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		rec := p.Latest()
		if rec == nil {
			_, _ = w.Write([]byte("{}\n"))
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rec)
	})
}

// sanitize clamps non-finite statistics to zero so every record is JSON-
// representable. Analysis must never take the run down; a NaN here means
// the fields themselves have gone bad, which is the health watchdog's job
// to report.
func sanitize(pr Product) Product {
	for k, v := range pr.Scalars {
		if !finite(v) {
			pr.Scalars[k] = 0
		}
	}
	for i, v := range pr.Bins {
		if !finite(v) {
			pr.Bins[i] = 0
		}
	}
	for i, v := range pr.Counts {
		if !finite(v) {
			pr.Counts[i] = 0
		}
	}
	return pr
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
