package insitu

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// mapBinder serves sources from plain slices, indexed directly.
type mapBinder map[string][]float64

func (mb mapBinder) Source(name string) (Source, error) {
	data, ok := mb[name]
	if !ok {
		return nil, &unknownField{name}
	}
	return func(idx int) float64 { return data[idx] }, nil
}

type unknownField struct{ name string }

func (e *unknownField) Error() string { return "unknown field " + e.name }

// sweep drives every cell through the pipeline's kernels into fresh rows
// split at cut, then merges in order — the tile/merge pattern in miniature.
func sweep(t *testing.T, p *Pipeline, cells int, vol float64, cut int) []float64 {
	t.Helper()
	rows := [][]float64{make([]float64, p.TotalSlots()), make([]float64, p.TotalSlots())}
	for _, row := range rows {
		p.InitVec(row)
	}
	for idx := 0; idx < cells; idx++ {
		row := rows[0]
		if idx >= cut {
			row = rows[1]
		}
		for _, bo := range p.Ops() {
			bo.Kern(row[bo.Off:bo.End], idx, vol)
		}
	}
	acc := make([]float64, p.TotalSlots())
	copy(acc, rows[0])
	p.MergeVec(acc, rows[1])
	return acc
}

func TestMomentsOperator(t *testing.T) {
	bnd := mapBinder{
		"T":   {300, 400, 500, 600},
		"rho": {1, 1, 2, 2},
	}
	p := NewPipeline(1)
	if err := p.Register(Moments{Field: "T"}, bnd); err != nil {
		t.Fatal(err)
	}
	if err := p.Register(Moments{Field: "T", Favre: true}, bnd); err != nil {
		t.Fatal(err)
	}
	acc := sweep(t, p, 4, 0.5, 2)
	rec := p.Publish(1, 0.1, acc, nil)

	plain := rec.Products[0]
	if plain.Name != "T" || plain.Op != "moments" {
		t.Fatalf("bad product identity: %+v", plain)
	}
	if got := plain.Scalars["mean"]; math.Abs(got-450) > 1e-12 {
		t.Errorf("mean = %g, want 450", got)
	}
	if plain.Scalars["min"] != 300 || plain.Scalars["max"] != 600 {
		t.Errorf("extrema = [%g, %g], want [300, 600]", plain.Scalars["min"], plain.Scalars["max"])
	}
	if plain.Scalars["cells"] != 4 {
		t.Errorf("cells = %g, want 4", plain.Scalars["cells"])
	}

	favre := rec.Products[1]
	if favre.Name != "T_favre" {
		t.Fatalf("favre name = %q", favre.Name)
	}
	// ρ-weighted mean: (1·300+1·400+2·500+2·600)/(1+1+2+2) = 2900/6.
	if got, want := favre.Scalars["mean"], 2900.0/6; math.Abs(got-want) > 1e-9 {
		t.Errorf("favre mean = %g, want %g", got, want)
	}
}

func TestMomentsMergeMatchesSingleSweep(t *testing.T) {
	vals := []float64{1, 5, 2, 8, 3, 9, 4, 7}
	bnd := mapBinder{"f": vals}
	for _, cut := range []int{0, 3, 8} {
		p := NewPipeline(1)
		if err := p.Register(Moments{Field: "f"}, bnd); err != nil {
			t.Fatal(err)
		}
		acc := sweep(t, p, len(vals), 1, cut)
		pr := p.Ops()[0].Op.Finish(acc)
		if pr.Scalars["min"] != 1 || pr.Scalars["max"] != 9 {
			t.Errorf("cut %d: extrema [%g, %g]", cut, pr.Scalars["min"], pr.Scalars["max"])
		}
		if got, want := pr.Scalars["mean"], 4.875; math.Abs(got-want) > 1e-12 {
			t.Errorf("cut %d: mean %g, want %g", cut, got, want)
		}
	}
}

func TestHistOperator(t *testing.T) {
	bnd := mapBinder{"f": {-10, 0.5, 1.5, 1.5, 99}}
	p := NewPipeline(1)
	if err := p.Register(Hist{Field: "f", Bins: 2, Lo: 0, Hi: 2}, bnd); err != nil {
		t.Fatal(err)
	}
	acc := sweep(t, p, 5, 1, 2)
	pr := p.Ops()[0].Op.Finish(acc)
	// Out-of-range clips to end bins: {-10, 0.5} → bin 0, {1.5, 1.5, 99} → bin 1.
	if pr.Counts[0] != 2 || pr.Counts[1] != 3 {
		t.Fatalf("counts = %v, want [2 3]", pr.Counts)
	}
	if math.Abs(pr.Bins[0]-0.4) > 1e-12 || math.Abs(pr.Bins[1]-0.6) > 1e-12 {
		t.Errorf("probabilities = %v, want [0.4 0.6]", pr.Bins)
	}
}

func TestHistRejectsDegenerateBounds(t *testing.T) {
	p := NewPipeline(1)
	if err := p.Register(Hist{Field: "f", Lo: 1, Hi: 1}, mapBinder{"f": {0}}); err == nil {
		t.Fatal("want error for Hi <= Lo")
	}
}

func TestConditionalOperator(t *testing.T) {
	bnd := mapBinder{
		"T": {100, 200, 300, 400, 999},
		"Z": {0.1, 0.3, 0.6, 1.0, 5.0}, // 1.0 joins the top bin; 5.0 drops
	}
	p := NewPipeline(1)
	if err := p.Register(Conditional{Of: "T", On: "Z", Bins: 2, Lo: 0, Hi: 1}, bnd); err != nil {
		t.Fatal(err)
	}
	acc := sweep(t, p, 5, 1, 3)
	pr := p.Ops()[0].Op.Finish(acc)
	if pr.Counts[0] != 2 || pr.Counts[1] != 2 {
		t.Fatalf("counts = %v, want [2 2]", pr.Counts)
	}
	if got := pr.Bins[0]; math.Abs(got-150) > 1e-12 {
		t.Errorf("bin 0 mean = %g, want 150", got)
	}
	if got := pr.Bins[1]; math.Abs(got-350) > 1e-12 {
		t.Errorf("bin 1 mean = %g, want 350 (Z = 1 must join the closed top bin)", got)
	}
	if pr.Scalars["samples"] != 4 {
		t.Errorf("samples = %g, want 4 (out-of-range conditioning drops)", pr.Scalars["samples"])
	}
}

func TestConditionalEmptyBinsFinite(t *testing.T) {
	p := NewPipeline(1)
	if err := p.Register(Conditional{Of: "T", On: "Z", Bins: 4, Lo: 0, Hi: 1},
		mapBinder{"T": {100}, "Z": {0.1}}); err != nil {
		t.Fatal(err)
	}
	acc := sweep(t, p, 1, 1, 1)
	rec := p.Publish(1, 0, acc, nil)
	for i, m := range rec.Products[0].Bins {
		if math.IsNaN(m) || math.IsInf(m, 0) {
			t.Fatalf("bin %d mean %v not finite (empty bins must report 0)", i, m)
		}
	}
	if _, err := json.Marshal(rec); err != nil {
		t.Fatalf("record not JSON-representable: %v", err)
	}
}

func TestGradMagAndVolumeFraction(t *testing.T) {
	bnd := mapBinder{
		"gx": {3, 0},
		"gy": {4, 0},
		"gz": {0, 0},
		"T":  {2000, 300},
	}
	p := NewPipeline(1)
	if err := p.Register(GradMag{Label: "fs", Fields: [3]string{"gx", "gy", "gz"}, Scale: 2}, bnd); err != nil {
		t.Fatal(err)
	}
	if err := p.Register(VolumeFraction{Label: "rz", Field: "T", Threshold: 1500}, bnd); err != nil {
		t.Fatal(err)
	}
	acc := sweep(t, p, 2, 0.5, 1)
	rec := p.Publish(1, 0, acc, nil)
	// ∫ 2·|∇| dV = 2·5·0.5 + 0 = 5.
	if got := rec.Products[0].Scalars["integral"]; math.Abs(got-5) > 1e-12 {
		t.Errorf("gradmag integral = %g, want 5", got)
	}
	if got := rec.Products[1].Scalars["fraction"]; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("volume fraction = %g, want 0.5", got)
	}
}

func TestPipelineDueAndToggle(t *testing.T) {
	p := NewPipeline(3)
	if p.Due(3) {
		t.Fatal("disabled pipeline must not be due")
	}
	p.Enable()
	for step, want := range map[int]bool{0: false, 1: false, 3: true, 6: true, 7: false} {
		if got := p.Due(step); got != want {
			t.Errorf("Due(%d) = %v, want %v", step, got, want)
		}
	}
	p.Disable()
	if p.Due(3) {
		t.Fatal("disabled pipeline must not be due")
	}
}

func TestPipelineSubscribeAndHandler(t *testing.T) {
	bnd := mapBinder{"f": {1, 2}}
	p := NewPipeline(1)
	if err := p.Register(Moments{Field: "f"}, bnd); err != nil {
		t.Fatal(err)
	}
	var got []Record
	p.Subscribe(func(r Record) { got = append(got, r) })

	// Handler before any record serves an empty object.
	rr := httptest.NewRecorder()
	p.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/analysis", nil))
	if rr.Body.String() != "{}\n" {
		t.Fatalf("empty handler body = %q", rr.Body.String())
	}

	acc := sweep(t, p, 2, 1, 1)
	p.Publish(7, 0.25, acc, []Product{{Op: "scalar", Name: "heat_release", Scalars: map[string]float64{"watts": 42}}})
	if len(got) != 1 || got[0].Step != 7 {
		t.Fatalf("subscriber got %+v", got)
	}
	if got[0].Products[1].Scalars["watts"] != 42 {
		t.Fatalf("extra product missing: %+v", got[0].Products)
	}

	rr = httptest.NewRecorder()
	p.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/analysis", nil))
	var rec Record
	if err := json.Unmarshal(rr.Body.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Step != 7 || len(rec.Products) != 2 {
		t.Fatalf("handler record = %+v", rec)
	}
}

func TestSanitizeNonFinite(t *testing.T) {
	pr := sanitize(Product{
		Scalars: map[string]float64{"a": math.NaN(), "b": 1},
		Bins:    []float64{math.Inf(1), 2},
	})
	if pr.Scalars["a"] != 0 || pr.Scalars["b"] != 1 || pr.Bins[0] != 0 || pr.Bins[1] != 2 {
		t.Fatalf("sanitize left non-finite values: %+v", pr)
	}
}

func TestStoreRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "analysis.jsonl")
	st, err := CreateStore(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := st.Sink()
	recs := []Record{
		{Step: 1, Time: 0.5, Products: []Product{{Op: "moments", Name: "T", Scalars: map[string]float64{"mean": 400}}}},
		{Step: 2, Time: 1.0, Products: []Product{{Op: "hist", Name: "T", Lo: 0, Hi: 1, Bins: []float64{0.5, 0.5}}}},
	}
	for _, r := range recs {
		sink(r)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAnalysis(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Step != 1 || got[1].Products[0].Bins[1] != 0.5 {
		t.Fatalf("roundtrip = %+v", got)
	}
}

func TestStoreSinkRetainsFirstError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "analysis.jsonl")
	st, err := CreateStore(path)
	if err != nil {
		t.Fatal(err)
	}
	st.Close() // force the next append's flush to fail
	sink := st.Sink()
	sink(Record{Step: 1})
	if st.Err() == nil {
		t.Fatal("want retained append error after closed file")
	}
}

func TestReadAnalysisMissingFile(t *testing.T) {
	if _, err := ReadAnalysis(filepath.Join(t.TempDir(), "absent.jsonl")); !os.IsNotExist(err) {
		t.Fatalf("want IsNotExist, got %v", err)
	}
}
