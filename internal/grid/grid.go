// Package grid provides the structured three-dimensional Cartesian meshes
// and field storage used by the S3D solver.
//
// S3D solves the governing equations on a structured 3-D Cartesian mesh
// (paper §2.6). Meshes may be uniform in a direction or algebraically
// stretched (the lifted-flame and Bunsen configurations use a uniform mesh in
// the streamwise and spanwise directions and an algebraically stretched mesh
// in the transverse direction). Derivatives are taken with respect to a
// uniform computational index and mapped to physical space through the metric
// dξ/dx stored per grid line.
package grid

import (
	"fmt"
	"math"
)

// Axis identifies one of the three mesh directions.
type Axis int

// The three coordinate directions. X is streamwise, Y transverse and Z
// spanwise in the jet configurations of the paper.
const (
	X Axis = iota
	Y
	Z
)

func (a Axis) String() string {
	switch a {
	case X:
		return "x"
	case Y:
		return "y"
	case Z:
		return "z"
	}
	return fmt.Sprintf("Axis(%d)", int(a))
}

// Spec describes a mesh before construction.
type Spec struct {
	Nx, Ny, Nz int     // interior grid points per direction
	Lx, Ly, Lz float64 // physical domain extents (m)

	// StretchY enables the algebraic transverse stretching used in the jet
	// configurations: points cluster around the domain centreline with an
	// inverse-tanh mapping. Beta controls the clustering strength; Beta <= 0
	// selects a default of 1.5 (edge spacing ≈ cosh²β ≈ 5.5× centre spacing).
	StretchY bool
	Beta     float64
}

// Grid is a constructed mesh. Coordinates and metrics are per-direction
// line arrays (the mesh is a tensor product).
type Grid struct {
	Spec

	// Xc, Yc, Zc hold the physical coordinate of each interior point.
	Xc, Yc, Zc []float64

	// MetX, MetY, MetZ hold dξ/dx (inverse Jacobian) at each interior point,
	// where ξ is the uniform computational coordinate with unit spacing.
	// A derivative computed on the index space is multiplied by the metric
	// to obtain the physical derivative.
	MetX, MetY, MetZ []float64
}

// New constructs a mesh from a spec. It panics on non-positive dimensions
// since a malformed spec is a programming error, not a runtime condition.
func New(s Spec) *Grid {
	if s.Nx <= 0 || s.Ny <= 0 || s.Nz <= 0 {
		panic(fmt.Sprintf("grid: non-positive dimensions %dx%dx%d", s.Nx, s.Ny, s.Nz))
	}
	if s.Lx <= 0 || s.Ly <= 0 || s.Lz <= 0 {
		panic(fmt.Sprintf("grid: non-positive extents %gx%gx%g", s.Lx, s.Ly, s.Lz))
	}
	g := &Grid{Spec: s}
	g.Xc, g.MetX = uniformLine(s.Nx, s.Lx)
	if s.StretchY {
		beta := s.Beta
		if beta <= 0 {
			beta = 1.5
		}
		g.Yc, g.MetY = stretchedLine(s.Ny, s.Ly, beta)
	} else {
		g.Yc, g.MetY = uniformLine(s.Ny, s.Ly)
	}
	g.Zc, g.MetZ = uniformLine(s.Nz, s.Lz)
	return g
}

// uniformLine returns coordinates and metrics for N points spanning [0, L].
// With a single point the spacing degenerates; the metric is set so that
// derivatives along that direction vanish gracefully (used for quasi-2D runs
// with Nz == 1).
func uniformLine(n int, l float64) (coord, met []float64) {
	coord = make([]float64, n)
	met = make([]float64, n)
	if n == 1 {
		coord[0] = 0
		met[0] = 0
		return coord, met
	}
	h := l / float64(n-1)
	for i := range coord {
		coord[i] = float64(i) * h
		met[i] = 1 / h
	}
	return coord, met
}

// stretchedLine returns an algebraically stretched line on [-L/2, L/2] with
// points clustered around the centreline (where the jet shear layers live)
// via y(η) = (L/(2β))·atanh(η·tanh β) for η ∈ [-1, 1]. The metric dξ/dy is
// computed from the analytic dy/dη.
func stretchedLine(n int, l, beta float64) (coord, met []float64) {
	coord = make([]float64, n)
	met = make([]float64, n)
	if n == 1 {
		return coord, met
	}
	tb := math.Tanh(beta)
	dEta := 2 / float64(n-1) // η spacing per unit index
	for i := range coord {
		eta := -1 + float64(i)*dEta
		coord[i] = 0.5 * l * math.Atanh(eta*tb) / beta
		// dy/dη = (L/(2β))·tanhβ/(1−η²tanh²β); dξ/dy = (dy/dη·dη/dξ)⁻¹ with
		// unit index spacing ξ = i, i.e. dη/dξ = dEta.
		dydEta := 0.5 * l * tb / (beta * (1 - eta*eta*tb*tb))
		met[i] = 1 / (dydEta * dEta)
	}
	// The atanh endpoints are exact analytically; pin them to kill roundoff.
	coord[0], coord[n-1] = -0.5*l, 0.5*l
	return coord, met
}

// Dim returns the number of interior points along the axis.
func (g *Grid) Dim(a Axis) int {
	switch a {
	case X:
		return g.Nx
	case Y:
		return g.Ny
	default:
		return g.Nz
	}
}

// Coord returns the physical coordinate line for the axis.
func (g *Grid) Coord(a Axis) []float64 {
	switch a {
	case X:
		return g.Xc
	case Y:
		return g.Yc
	default:
		return g.Zc
	}
}

// Metric returns the dξ/dx metric line for the axis.
func (g *Grid) Metric(a Axis) []float64 {
	switch a {
	case X:
		return g.MetX
	case Y:
		return g.MetY
	default:
		return g.MetZ
	}
}

// MinSpacing returns the smallest physical grid spacing in the mesh, the
// quantity that controls the acoustic CFL limit.
func (g *Grid) MinSpacing() float64 {
	min := math.Inf(1)
	lines := [][]float64{g.Xc, g.Yc, g.Zc}
	for _, c := range lines {
		for i := 1; i < len(c); i++ {
			if d := c[i] - c[i-1]; d > 0 && d < min {
				min = d
			}
		}
	}
	return min
}

// NumCells returns the total number of interior points.
func (g *Grid) NumCells() int { return g.Nx * g.Ny * g.Nz }

// Sub returns a grid describing the subdomain [i0,i0+nx) × [j0,j0+ny) ×
// [k0,k0+nz) of g, sharing the parent's coordinate spacing and metrics.
// It is used by the domain decomposition: every rank's local grid is a Sub
// of the global grid, so metric terms are identical to the serial run.
func (g *Grid) Sub(i0, nx, j0, ny, k0, nz int) *Grid {
	sub := &Grid{Spec: g.Spec}
	sub.Nx, sub.Ny, sub.Nz = nx, ny, nz
	sub.Xc, sub.MetX = g.Xc[i0:i0+nx], g.MetX[i0:i0+nx]
	sub.Yc, sub.MetY = g.Yc[j0:j0+ny], g.MetY[j0:j0+ny]
	sub.Zc, sub.MetZ = g.Zc[k0:k0+nz], g.MetZ[k0:k0+nz]
	return sub
}
