package grid

import (
	"math"
	"testing"
)

func buildTestSet(t *testing.T) *FieldSet {
	t.Helper()
	s := NewFieldSet(6, 5, 4, 2)
	s.Register(FieldMeta{Name: "rho", Role: RoleConserved, Species: -1, Group: "conserved", Ckpt: "rho"})
	s.Register(FieldMeta{Name: "rhou", Role: RoleConserved, Species: -1, Group: "conserved", Ckpt: "rhou"})
	s.Register(FieldMeta{Name: "rhoY_H2", Role: RoleConserved, Species: 0, Group: "conserved", Ckpt: "rhoY_H2"})
	s.Register(FieldMeta{Name: "T", Role: RolePrimitive, Species: -1, Ckpt: "T_guess"})
	s.Register(FieldMeta{Name: "mu", Role: RoleTransport, Species: -1})
	s.Build()
	return s
}

func TestFieldSetArenaLayout(t *testing.T) {
	s := buildTestSet(t)
	per := s.FieldLen()
	want := (6 + 4) * (5 + 4) * (4 + 4)
	if per != want {
		t.Fatalf("FieldLen = %d, want %d", per, want)
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	// Consecutive fields occupy consecutive arena runs: writing through a
	// field must land in the matching Span window.
	span := s.Span(0, 3)
	if len(span) != 3*per {
		t.Fatalf("Span length = %d, want %d", len(span), 3*per)
	}
	f1 := s.Field(1)
	f1.Set(0, 0, 0, 42)
	idx := per + f1.Idx(0, 0, 0)
	if span[idx] != 42 {
		t.Fatalf("bank aliasing broken: span[%d] = %g, want 42", idx, span[idx])
	}
	// Per-field slices are capacity-limited: appending to one must not
	// be able to scribble on its neighbour via the shared arena.
	if cap(f1.Data) != len(f1.Data) {
		t.Fatalf("field Data capacity %d exceeds length %d", cap(f1.Data), len(f1.Data))
	}
}

func TestFieldSetLookup(t *testing.T) {
	s := buildTestSet(t)
	if s.ByName("mu") != s.Field(4) {
		t.Fatal("ByName(mu) did not resolve to field 4")
	}
	if s.ByName("nope") != nil {
		t.Fatal("ByName of unknown name should be nil")
	}
	if s.ID("rhoY_H2") != 2 || s.ID("nope") != -1 {
		t.Fatal("ID lookup wrong")
	}
	g := s.Group("conserved")
	if len(g) != 3 || g[0] != s.Field(0) || g[2] != s.Field(2) {
		t.Fatalf("Group order wrong: %d fields", len(g))
	}
	ck := s.Checkpointed()
	if len(ck) != 4 || ck[3] != 3 {
		t.Fatalf("Checkpointed = %v, want [0 1 2 3]", ck)
	}
	if m := s.Meta(2); m.Species != 0 || m.Ckpt != "rhoY_H2" {
		t.Fatalf("Meta(2) = %+v", m)
	}
	names := s.Names()
	if names[0] != "rho" || names[4] != "mu" {
		t.Fatalf("Names = %v", names)
	}
}

// TestFieldSetFieldMatchesNewField3 pins that an arena-carved field is
// indistinguishable from a standalone allocation: same shape, strides,
// zeroed storage, and bitwise-equal results for representative kernels.
func TestFieldSetFieldMatchesNewField3(t *testing.T) {
	s := NewFieldSet(7, 6, 5, 3)
	s.Register(FieldMeta{Name: "a", Species: -1})
	s.Build()
	a := s.Field(0)
	b := NewField3Ghost(7, 6, 5, 3)
	ai, aj, ak := a.Strides()
	bi, bj, bk := b.Strides()
	if ai != bi || aj != bj || ak != bk || len(a.Data) != len(b.Data) {
		t.Fatalf("shape mismatch: strides (%d,%d,%d) vs (%d,%d,%d), len %d vs %d",
			ai, aj, ak, bi, bj, bk, len(a.Data), len(b.Data))
	}
	for p := range a.Data {
		v := math.Sin(float64(p) * 0.7)
		a.Data[p] = v
		b.Data[p] = v
	}
	a.AXPY(1.5, a)
	b.AXPY(1.5, b)
	a.ScaleRange(-2, [3]int{0, 0, 0}, [3]int{7, 6, 5})
	b.ScaleRange(-2, [3]int{0, 0, 0}, [3]int{7, 6, 5})
	if sa, sb := a.SumInterior(), b.SumInterior(); math.Float64bits(sa) != math.Float64bits(sb) {
		t.Fatalf("SumInterior diverges: %x vs %x", math.Float64bits(sa), math.Float64bits(sb))
	}
	for p := range a.Data {
		if a.Data[p] != b.Data[p] {
			t.Fatalf("storage diverges at %d: %g vs %g", p, a.Data[p], b.Data[p])
		}
	}
}

func TestFieldSetPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	s := NewFieldSet(4, 4, 4, 1)
	s.Register(FieldMeta{Name: "x", Species: -1})
	expectPanic("dup name", func() { s.Register(FieldMeta{Name: "x", Species: -1}) })
	expectPanic("empty name", func() { s.Register(FieldMeta{Species: -1}) })
	expectPanic("use before build", func() { s.Field(0) })
	s.Build()
	expectPanic("register after build", func() { s.Register(FieldMeta{Name: "y", Species: -1}) })
	expectPanic("double build", func() { s.Build() })
	expectPanic("span out of range", func() { s.Span(0, 2) })
}

func TestScratchStandalone(t *testing.T) {
	f := Scratch("stage", 8, 4, 2, 0)
	if f.Nx != 8 || f.Ny != 4 || f.Nz != 2 || f.G != 0 {
		t.Fatalf("Scratch shape wrong: %dx%dx%d g%d", f.Nx, f.Ny, f.Nz, f.G)
	}
	f.Set(7, 3, 1, 9)
	if f.At(7, 3, 1) != 9 {
		t.Fatal("Scratch field not writable")
	}
}
