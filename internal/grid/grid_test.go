package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniformLineSpansDomain(t *testing.T) {
	g := New(Spec{Nx: 11, Ny: 5, Nz: 3, Lx: 2, Ly: 1, Lz: 0.5})
	if g.Xc[0] != 0 || math.Abs(g.Xc[10]-2) > 1e-14 {
		t.Fatalf("x endpoints = %g, %g; want 0, 2", g.Xc[0], g.Xc[10])
	}
	for i := 1; i < len(g.Xc); i++ {
		if d := g.Xc[i] - g.Xc[i-1]; math.Abs(d-0.2) > 1e-14 {
			t.Fatalf("non-uniform spacing %g at %d", d, i)
		}
	}
	if got := g.MetX[3]; math.Abs(got-5) > 1e-12 {
		t.Fatalf("metric = %g, want 5", got)
	}
}

func TestStretchedLineSymmetricAndMonotone(t *testing.T) {
	g := New(Spec{Nx: 3, Ny: 41, Nz: 3, Lx: 1, Ly: 2, Lz: 1, StretchY: true})
	n := len(g.Yc)
	if math.Abs(g.Yc[0]+1) > 1e-12 || math.Abs(g.Yc[n-1]-1) > 1e-12 {
		t.Fatalf("stretched endpoints = %g, %g; want ±1", g.Yc[0], g.Yc[n-1])
	}
	for i := 0; i < n; i++ {
		if math.Abs(g.Yc[i]+g.Yc[n-1-i]) > 1e-12 {
			t.Fatalf("not symmetric at %d: %g vs %g", i, g.Yc[i], g.Yc[n-1-i])
		}
		if i > 0 && g.Yc[i] <= g.Yc[i-1] {
			t.Fatalf("not monotone at %d", i)
		}
	}
	// Clustering: centre spacing smaller than edge spacing.
	mid := n / 2
	dcentre := g.Yc[mid+1] - g.Yc[mid]
	dedge := g.Yc[1] - g.Yc[0]
	if dcentre >= dedge {
		t.Fatalf("no clustering: centre %g >= edge %g", dcentre, dedge)
	}
}

func TestStretchedMetricMatchesFiniteDifference(t *testing.T) {
	g := New(Spec{Nx: 3, Ny: 101, Nz: 3, Lx: 1, Ly: 3, Lz: 1, StretchY: true, Beta: 2.0})
	// dξ/dy ≈ 1/(y[i+1]-y[i-1])·2 for interior points.
	for i := 5; i < len(g.Yc)-5; i++ {
		fd := 2 / (g.Yc[i+1] - g.Yc[i-1])
		if rel := math.Abs(g.MetY[i]-fd) / fd; rel > 2e-2 {
			t.Fatalf("metric mismatch at %d: analytic %g vs FD %g", i, g.MetY[i], fd)
		}
	}
}

func TestMinSpacing(t *testing.T) {
	g := New(Spec{Nx: 11, Ny: 21, Nz: 2, Lx: 1, Ly: 1, Lz: 1})
	// dx = 0.1, dy = 0.05, dz = 1.
	if got := g.MinSpacing(); math.Abs(got-0.05) > 1e-14 {
		t.Fatalf("MinSpacing = %g, want 0.05", got)
	}
}

func TestSubSharesCoordinates(t *testing.T) {
	g := New(Spec{Nx: 16, Ny: 12, Nz: 8, Lx: 1, Ly: 1, Lz: 1})
	s := g.Sub(4, 8, 0, 6, 2, 4)
	if s.Nx != 8 || s.Ny != 6 || s.Nz != 4 {
		t.Fatalf("sub dims = %dx%dx%d", s.Nx, s.Ny, s.Nz)
	}
	if s.Xc[0] != g.Xc[4] || s.Zc[0] != g.Zc[2] {
		t.Fatalf("sub coords not aligned with parent")
	}
	if s.MetY[3] != g.MetY[3] {
		t.Fatalf("sub metric not shared")
	}
}

func TestField3IndexRoundTrip(t *testing.T) {
	f := NewField3Ghost(6, 5, 4, Ghost)
	want := map[[3]int]float64{}
	v := 0.0
	for k := -Ghost; k < 4+Ghost; k++ {
		for j := -Ghost; j < 5+Ghost; j++ {
			for i := -Ghost; i < 6+Ghost; i++ {
				v++
				f.Set(i, j, k, v)
				want[[3]int{i, j, k}] = v
			}
		}
	}
	for key, w := range want {
		if got := f.At(key[0], key[1], key[2]); got != w {
			t.Fatalf("At(%v) = %g, want %g", key, got, w)
		}
	}
}

func TestField3IndexUnique(t *testing.T) {
	f := NewField3Ghost(4, 3, 2, 2)
	seen := map[int]bool{}
	for k := -2; k < 2+2; k++ {
		for j := -2; j < 3+2; j++ {
			for i := -2; i < 4+2; i++ {
				idx := f.Idx(i, j, k)
				if idx < 0 || idx >= len(f.Data) {
					t.Fatalf("Idx(%d,%d,%d) = %d out of range", i, j, k, idx)
				}
				if seen[idx] {
					t.Fatalf("Idx(%d,%d,%d) = %d duplicated", i, j, k, idx)
				}
				seen[idx] = true
			}
		}
	}
	if len(seen) != len(f.Data) {
		t.Fatalf("index map covers %d of %d slots", len(seen), len(f.Data))
	}
}

func TestWrapPeriodicX(t *testing.T) {
	f := NewField3Ghost(8, 3, 3, Ghost)
	f.Each(func(i, j, k int, _ float64) {
		f.Set(i, j, k, float64(100*i+10*j+k))
	})
	f.WrapPeriodic(X)
	for j := 0; j < 3; j++ {
		for k := 0; k < 3; k++ {
			for l := 1; l <= Ghost; l++ {
				if got, want := f.At(-l, j, k), f.At(8-l, j, k); got != want {
					t.Fatalf("low ghost %d mismatch: %g vs %g", l, got, want)
				}
				if got, want := f.At(7+l, j, k), f.At(l-1, j, k); got != want {
					t.Fatalf("high ghost %d mismatch: %g vs %g", l, got, want)
				}
			}
		}
	}
}

func TestMinMaxAndSum(t *testing.T) {
	f := NewField3Ghost(4, 4, 4, 2)
	f.Fill(999) // ghost garbage must not leak into interior reductions
	f.Each(func(i, j, k int, _ float64) { f.Set(i, j, k, float64(i+j+k)) })
	min, max := f.MinMax()
	if min != 0 || max != 9 {
		t.Fatalf("MinMax = %g, %g; want 0, 9", min, max)
	}
	// Sum of i+j+k over 4³ points: 3·(0+1+2+3)·16 = 288.
	if got := f.SumInterior(); got != 288 {
		t.Fatalf("SumInterior = %g, want 288", got)
	}
}

func TestAXPYAndScale(t *testing.T) {
	a := NewField3Ghost(3, 3, 3, 1)
	b := NewField3Ghost(3, 3, 3, 1)
	a.Fill(2)
	b.Fill(3)
	a.AXPY(0.5, b) // 2 + 1.5
	if got := a.At(1, 1, 1); got != 3.5 {
		t.Fatalf("AXPY result = %g, want 3.5", got)
	}
	a.Scale(2)
	if got := a.At(0, 0, 0); got != 7 {
		t.Fatalf("Scale result = %g, want 7", got)
	}
}

// Property: WrapPeriodic never changes interior values, for random shapes.
func TestWrapPeriodicPreservesInterior(t *testing.T) {
	prop := func(nx, ny, nz uint8) bool {
		dims := [3]int{int(nx%6) + 1, int(ny%6) + 1, int(nz%6) + 1}
		f := NewField3Ghost(dims[0], dims[1], dims[2], 3)
		v := 0.0
		f.Map(func(i, j, k int, _ float64) float64 { v++; return v })
		before := f.Clone()
		f.WrapPeriodic(X)
		f.WrapPeriodic(Y)
		f.WrapPeriodic(Z)
		ok := true
		f.Each(func(i, j, k int, val float64) {
			if val != before.At(i, j, k) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero dimension")
		}
	}()
	New(Spec{Nx: 0, Ny: 1, Nz: 1, Lx: 1, Ly: 1, Lz: 1})
}

func TestExtrapolateGhosts(t *testing.T) {
	f := NewField3Ghost(6, 4, 3, 2)
	f.Each(func(i, j, k int, _ float64) { f.Set(i, j, k, float64(10*i+j)) })
	f.ExtrapolateGhosts(X)
	for l := 1; l <= 2; l++ {
		if f.At(-l, 2, 1) != f.At(0, 2, 1) {
			t.Fatalf("low ghost %d not extrapolated", l)
		}
		if f.At(5+l, 2, 1) != f.At(5, 2, 1) {
			t.Fatalf("high ghost %d not extrapolated", l)
		}
	}
	f.ExtrapolateGhosts(Y)
	if f.At(3, -1, 1) != f.At(3, 0, 1) || f.At(3, 4, 1) != f.At(3, 3, 1) {
		t.Fatal("y extrapolation wrong")
	}
	f.ExtrapolateGhosts(Z)
	if f.At(3, 2, -2) != f.At(3, 2, 0) {
		t.Fatal("z extrapolation wrong")
	}
}

func TestCloneDeepCopies(t *testing.T) {
	f := NewField3Ghost(3, 3, 3, 1)
	f.Fill(5)
	c := f.Clone()
	c.Set(1, 1, 1, 9)
	if f.At(1, 1, 1) != 5 {
		t.Fatal("Clone shares storage")
	}
}

func TestRangeOpsMatchFullOps(t *testing.T) {
	fill := func() (*Field3, *Field3) {
		f := NewField3Ghost(7, 5, 4, 2)
		x := NewField3Ghost(7, 5, 4, 2)
		for i := range f.Data {
			f.Data[i] = float64(i%13) * 0.5
			x.Data[i] = float64(i%7) * 1.25
		}
		return f, x
	}
	interior := [2][3]int{{0, 0, 0}, {7, 5, 4}}

	// Tiling the interior along k must reproduce the single full-box sweep
	// bitwise, for every ranged op.
	fA, xA := fill()
	fB, xB := fill()
	fA.AXPYRange(1.0/3, xA, interior[0], interior[1])
	for k := 0; k < 4; k++ {
		fB.AXPYRange(1.0/3, xB, [3]int{0, 0, k}, [3]int{7, 5, k + 1})
	}
	for i := range fA.Data {
		if fA.Data[i] != fB.Data[i] {
			t.Fatalf("AXPYRange tiled != whole at %d", i)
		}
	}

	fA.ScaleRange(0.7, interior[0], interior[1])
	for k := 0; k < 4; k++ {
		fB.ScaleRange(0.7, [3]int{0, 0, k}, [3]int{7, 5, k + 1})
	}
	for i := range fA.Data {
		if fA.Data[i] != fB.Data[i] {
			t.Fatalf("ScaleRange tiled != whole at %d", i)
		}
	}

	if got, want := fA.SumRange(interior[0], interior[1]), fA.SumInterior(); got != want {
		t.Fatalf("SumRange(interior) = %v, SumInterior = %v", got, want)
	}

	dst := NewField3Ghost(7, 5, 4, 2)
	for k := 0; k < 4; k++ {
		dst.CopyRange(fA, [3]int{0, 0, k}, [3]int{7, 5, k + 1})
	}
	for k := 0; k < 4; k++ {
		for j := 0; j < 5; j++ {
			for i := 0; i < 7; i++ {
				if dst.At(i, j, k) != fA.At(i, j, k) {
					t.Fatalf("CopyRange missed (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
	// CopyRange must not touch ghosts outside the box.
	if dst.At(-1, 0, 0) != 0 {
		t.Fatal("CopyRange wrote outside the box")
	}
}

func TestRowAliasesStorage(t *testing.T) {
	f := NewField3Ghost(6, 3, 3, 2)
	row := f.Row(1, 2)
	if len(row) != 6 {
		t.Fatalf("Row length = %d, want 6", len(row))
	}
	row[4] = 42
	if f.At(4, 1, 2) != 42 {
		t.Fatal("Row does not alias storage")
	}
}
