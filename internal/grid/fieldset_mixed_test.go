package grid

import (
	"math"
	"testing"
)

func expectPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}

// TestFieldSetMixedPolicyWidths pins the role→storage resolution of the
// mixed policy and the per-width arena carving: demoted fields get float32
// backing, everything else keeps float64, and explicit Storage requests
// override the policy in both directions.
func TestFieldSetMixedPolicyWidths(t *testing.T) {
	s := NewFieldSetPolicy(4, 3, 2, 1, PolicyMixed)
	q := s.Register(FieldMeta{Name: "q", Role: RoleConserved, Species: -1})
	g := s.Register(FieldMeta{Name: "g", Role: RoleGradient, Species: -1})
	mu := s.Register(FieldMeta{Name: "mu", Role: RoleTransport, Species: -1})
	p := s.Register(FieldMeta{Name: "p", Role: RolePrimitive, Species: -1})
	// Explicit overrides beat the policy.
	wideG := s.Register(FieldMeta{Name: "wide_g", Role: RoleGradient, Species: -1, Storage: StorageFloat64})
	s.Build()

	for _, tc := range []struct {
		id   int
		want Storage
	}{
		{q, StorageFloat64}, {g, StorageFloat32}, {mu, StorageFloat32},
		{p, StorageFloat64}, {wideG, StorageFloat64},
	} {
		if got := s.Storage(tc.id); got != tc.want {
			t.Fatalf("Storage(%s) = %v, want %v", s.Meta(tc.id).Name, got, tc.want)
		}
		f := s.Field(tc.id)
		if (tc.want == StorageFloat32) != (f.Data32 != nil) || (tc.want == StorageFloat64) != (f.Data != nil) {
			t.Fatalf("%s: backing slices inconsistent with storage %v", s.Meta(tc.id).Name, tc.want)
		}
		if f.Storage() != tc.want {
			t.Fatalf("%s: Field3.Storage() = %v, want %v", s.Meta(tc.id).Name, f.Storage(), tc.want)
		}
	}

	// At/Set/Add round-trip through narrow storage with round-once stores.
	gf := s.Field(g)
	gf.Set(1, 1, 1, 1.0/3.0)
	if want := float64(float32(1.0 / 3.0)); gf.At(1, 1, 1) != want {
		t.Fatalf("narrow Set/At = %v, want %v", gf.At(1, 1, 1), want)
	}
	gf.Add(1, 1, 1, 1.0/7.0)
	want := float64(float32(float64(float32(1.0/3.0)) + 1.0/7.0))
	if gf.At(1, 1, 1) != want {
		t.Fatalf("narrow Add = %v, want widen-accumulate-round-once %v", gf.At(1, 1, 1), want)
	}
}

// TestFieldSetMixedSpanContiguity: consecutive same-width registrations form
// a bank reachable through Span even under mixed policy, and a Span that
// would cross a float32 field panics instead of silently mis-addressing.
func TestFieldSetMixedSpanContiguity(t *testing.T) {
	s := NewFieldSetPolicy(4, 3, 2, 1, PolicyMixed)
	a := s.Register(FieldMeta{Name: "a", Role: RoleConserved, Species: -1})
	b := s.Register(FieldMeta{Name: "b", Role: RoleConserved, Species: -1})
	s.Register(FieldMeta{Name: "g", Role: RoleGradient, Species: -1}) // float32, id 2
	c := s.Register(FieldMeta{Name: "c", Role: RolePrimitive, Species: -1})
	s.Build()

	per := s.FieldLen()
	span := s.Span(a, 2)
	if len(span) != 2*per {
		t.Fatalf("Span length = %d, want %d", len(span), 2*per)
	}
	fb := s.Field(b)
	fb.Set(0, 0, 0, 7)
	if span[per+fb.Idx(0, 0, 0)] != 7 {
		t.Fatal("f64 bank aliasing broken under mixed policy")
	}
	// c sits in the float64 arena directly after b (the float32 field lives
	// in its own arena), so a width-homogeneous prefix keeps its bank even
	// with a narrow field registered in between — but Span over the id range
	// that includes the narrow field must refuse.
	expectPanic(t, "span crossing float32 field", func() { s.Span(b, 3) })
	if got := s.Span(c, 1); len(got) != per {
		t.Fatalf("Span(c,1) length = %d, want %d", len(got), per)
	}
	if got := s.Span(a, 0); got != nil {
		t.Fatal("empty span must be nil")
	}
}

// TestFieldSetMixedCheckpointOrdering: checkpoint and halo-group order is
// registration order, unaffected by a mixed-width field registered in the
// middle — switching precision policy must never reorder a checkpoint or a
// halo message.
func TestFieldSetMixedCheckpointOrdering(t *testing.T) {
	s := NewFieldSetPolicy(4, 3, 2, 1, PolicyMixed)
	s.Register(FieldMeta{Name: "a", Role: RoleConserved, Species: -1, Ckpt: "A", Group: "h"})
	s.Register(FieldMeta{Name: "g", Role: RoleGradient, Species: -1, Ckpt: "G", Group: "h"})
	s.Register(FieldMeta{Name: "b", Role: RolePrimitive, Species: -1, Ckpt: "B", Group: "h"})
	s.Build()

	ck := s.Checkpointed()
	if len(ck) != 3 || ck[0] != 0 || ck[1] != 1 || ck[2] != 2 {
		t.Fatalf("Checkpointed = %v, want [0 1 2] (registration order, width-independent)", ck)
	}
	grp := s.Group("h")
	if len(grp) != 3 || grp[0] != s.Field(0) || grp[1] != s.Field(1) || grp[2] != s.Field(2) {
		t.Fatal("halo group order must be registration order regardless of width")
	}
	// The same registrations under strict policy yield the same orders.
	s2 := NewFieldSetPolicy(4, 3, 2, 1, PolicyStrict)
	s2.Register(FieldMeta{Name: "a", Role: RoleConserved, Species: -1, Ckpt: "A", Group: "h"})
	s2.Register(FieldMeta{Name: "g", Role: RoleGradient, Species: -1, Ckpt: "G", Group: "h"})
	s2.Register(FieldMeta{Name: "b", Role: RolePrimitive, Species: -1, Ckpt: "B", Group: "h"})
	s2.Build()
	ck2 := s2.Checkpointed()
	for i := range ck {
		if ck[i] != ck2[i] {
			t.Fatalf("checkpoint order differs across policies: %v vs %v", ck, ck2)
		}
	}
}

// TestFieldSetZeroHaloGroup: the empty group name is never a halo group —
// ungrouped fields must not leak into Group("") — and an unknown group is
// empty rather than an error.
func TestFieldSetZeroHaloGroup(t *testing.T) {
	s := NewFieldSet(4, 3, 2, 1)
	s.Register(FieldMeta{Name: "u", Role: RolePrimitive, Species: -1}) // no group
	s.Register(FieldMeta{Name: "q", Role: RoleConserved, Species: -1, Group: "conserved"})
	s.Build()
	if g := s.Group(""); len(g) != 0 {
		t.Fatalf("Group(\"\") = %d fields, want 0 (ungrouped fields are not a group)", len(g))
	}
	if g := s.Group("nope"); len(g) != 0 {
		t.Fatalf("unknown group = %d fields, want 0", len(g))
	}
	if g := s.Group("conserved"); len(g) != 1 {
		t.Fatalf("conserved group = %d fields, want 1", len(g))
	}
}

// TestFieldSetDuplicateNameAcrossWidths: name uniqueness is width-blind.
func TestFieldSetDuplicateNameAcrossWidths(t *testing.T) {
	s := NewFieldSetPolicy(4, 3, 2, 1, PolicyMixed)
	s.Register(FieldMeta{Name: "x", Role: RoleConserved, Species: -1})
	expectPanic(t, "duplicate name with different width", func() {
		s.Register(FieldMeta{Name: "x", Role: RoleGradient, Species: -1})
	})
}

// TestNarrowRowAccess: Row refuses narrow storage (a silent widening copy
// would break its aliasing contract); RowInto widens through the caller's
// buffer and SetRow rounds once per value on store.
func TestNarrowRowAccess(t *testing.T) {
	s := NewFieldSetPolicy(5, 3, 2, 1, PolicyMixed)
	id := s.Register(FieldMeta{Name: "g", Role: RoleGradient, Species: -1})
	s.Build()
	f := s.Field(id)

	expectPanic(t, "Row on float32 storage", func() { f.Row(1, 1) })

	src := []float64{1.0 / 3.0, 2, 3, 4, 5}
	f.SetRow(1, 1, src)
	buf := make([]float64, 5)
	got := f.RowInto(buf, 1, 1)
	for i, v := range src {
		if want := float64(float32(v)); got[i] != want {
			t.Fatalf("row[%d] = %v, want %v (round once on store, widen on load)", i, got[i], want)
		}
	}
	// Float64 fields hand out live arena views from RowInto (no copy).
	s2 := NewFieldSet(5, 3, 2, 1)
	wid := s2.Register(FieldMeta{Name: "w", Role: RolePrimitive, Species: -1})
	s2.Build()
	w := s2.Field(wid)
	row := w.RowInto(nil, 0, 0)
	row[2] = math.Pi
	if w.At(2, 0, 0) != math.Pi {
		t.Fatal("RowInto on float64 storage must alias the arena")
	}
}
