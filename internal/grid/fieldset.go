package grid

import "fmt"

// Storage is a field's storage class. Narrow storage is storage only: every
// consumer computes and accumulates in float64, loading wide and rounding
// exactly once per store.
type Storage int

const (
	// StorageAuto defers the choice to the FieldSet's precision policy,
	// which resolves by role at registration time.
	StorageAuto Storage = iota
	// StorageFloat64 pins full-width storage regardless of policy.
	StorageFloat64
	// StorageFloat32 pins narrow storage regardless of policy.
	StorageFloat32
)

// String returns the storage class name as reported by /fields.
func (st Storage) String() string {
	switch st {
	case StorageAuto:
		return "auto"
	case StorageFloat64:
		return "float64"
	case StorageFloat32:
		return "float32"
	}
	return fmt.Sprintf("storage(%d)", int(st))
}

// Width returns the storage width in bytes per value (0 for StorageAuto).
func (st Storage) Width() int {
	switch st {
	case StorageFloat64:
		return 8
	case StorageFloat32:
		return 4
	}
	return 0
}

// Policy names a per-field precision policy: a role→storage mapping applied
// to StorageAuto registrations.
type Policy int

const (
	// PolicyStrict stores every field in float64 — the reference policy the
	// solution-hash baselines are pinned against.
	PolicyStrict Policy = iota
	// PolicyMixed demotes transport coefficients (μ, λ, D_k) and stored
	// gradients to float32 storage. Conserved registers (Q, dQ, rhs),
	// primitives, fluxes and scratch stay float64, so the RK bank update and
	// checkpoint state keep full width; the demoted fields are exactly the
	// large read-mostly operand sets of the fused flux kernels.
	PolicyMixed
)

// ParsePolicy resolves a -precision flag value ("" and "strict" are the
// reference policy; "mixed" demotes by role).
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "strict":
		return PolicyStrict, nil
	case "mixed":
		return PolicyMixed, nil
	}
	return 0, fmt.Errorf("grid: unknown precision policy %q (valid: strict, mixed)", s)
}

// String returns the policy's flag-spec name.
func (p Policy) String() string {
	switch p {
	case PolicyStrict:
		return "strict"
	case PolicyMixed:
		return "mixed"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// StorageFor resolves the storage class the policy assigns to a role.
func (p Policy) StorageFor(r Role) Storage {
	if p == PolicyMixed && (r == RoleTransport || r == RoleGradient) {
		return StorageFloat32
	}
	return StorageFloat64
}

// FieldSet is a registry-plus-arena owning every field of a solver block.
// S3D's Fortran core keeps all solution registers in a handful of contiguous
// arrays with a fixed variable ordering (paper §2, §4), which is what makes
// its halo packing, RK 2N register updates and restart I/O cheap and uniform.
// FieldSet recovers that property: each field is registered exactly once with
// metadata (stable name, role, species index, halo-exchange group, checkpoint
// inclusion, storage class), and Build carves every Field3's backing storage
// out of one contiguous arena per storage width in registration order. Fields
// registered consecutively with the same width therefore occupy consecutive
// arena runs — a bank — and bank-wide operations (the RK register update,
// conservation sums) become single stride-1 loops over Span instead of
// per-field calls.
//
// Registration order is ABI: it fixes the arena layout, the halo-group pack
// order and the checkpoint variable order — the latter two irrespective of
// storage width, so switching precision policy never reorders a checkpoint
// or a halo message. Consumers resolve fields by name or group; nothing
// outside the registry re-derives field identity.
type FieldSet struct {
	nx, ny, nz, ghost int
	perField          int // arena values per field
	policy            Policy

	metas   []FieldMeta
	storage []Storage // resolved (never StorageAuto) per field
	slot    []int     // index within the field's same-width arena
	fields  []*Field3
	byName  map[string]int
	groups  map[string][]int // halo group → ids in registration order

	arena   []float64 // float64 arena; non-nil once Build has run
	arena32 []float32 // float32 arena; may be empty under strict policy
	built   bool
}

// Role classifies a registered field. The precision policy resolves
// StorageAuto registrations by role, so beyond inventory metadata the role
// now also selects storage width.
type Role int

const (
	// RoleConserved marks a conserved-variable register (a Q component).
	RoleConserved Role = iota
	// RoleRegister marks an RK integration register (dQ, rhs).
	RoleRegister
	// RolePrimitive marks a primitive decoded from the conserved state.
	RolePrimitive
	// RoleTransport marks a transport coefficient (μ, λ, D_k).
	RoleTransport
	// RoleGradient marks a stored spatial derivative.
	RoleGradient
	// RoleFlux marks an assembled flux component.
	RoleFlux
	// RoleScratch marks reusable working storage.
	RoleScratch
	// RoleCost marks an observability cost-density field (per-cell attributed
	// kernel cost). Cost fields are diagnostics: never checkpointed, never
	// halo-exchanged, and always full-width so cost records stay bitwise
	// reproducible under every precision policy.
	RoleCost
)

// String returns the role's stable lower-case name (used in /fields JSON).
func (r Role) String() string {
	switch r {
	case RoleConserved:
		return "conserved"
	case RoleRegister:
		return "register"
	case RolePrimitive:
		return "primitive"
	case RoleTransport:
		return "transport"
	case RoleGradient:
		return "gradient"
	case RoleFlux:
		return "flux"
	case RoleScratch:
		return "scratch"
	case RoleCost:
		return "cost"
	}
	return fmt.Sprintf("role(%d)", int(r))
}

// FieldMeta describes one registered field.
type FieldMeta struct {
	// Name is the stable registry name; unique within the set. Viz, in-situ
	// extraction and the /fields endpoint resolve fields by this name.
	Name string
	// Role classifies the field.
	Role Role
	// Species is the species index for per-species fields, -1 otherwise.
	Species int
	// Group is the halo-exchange group ("" when the field is never
	// exchanged). Group order is registration order.
	Group string
	// Ckpt is the on-disk checkpoint variable name ("" when the field is
	// not checkpointed). Checkpoint order is registration order.
	Ckpt string
	// Storage is the requested storage class; StorageAuto (the zero value)
	// defers to the set's precision policy, resolved by Role.
	Storage Storage
}

// NewFieldSet creates an empty registry under the strict (all-float64)
// policy for blocks of the given interior extents and ghost width.
func NewFieldSet(nx, ny, nz, ghost int) *FieldSet {
	return NewFieldSetPolicy(nx, ny, nz, ghost, PolicyStrict)
}

// NewFieldSetPolicy creates an empty registry under an explicit precision
// policy.
func NewFieldSetPolicy(nx, ny, nz, ghost int, pol Policy) *FieldSet {
	sj := nx + 2*ghost
	sk := sj * (ny + 2*ghost)
	return &FieldSet{
		nx: nx, ny: ny, nz: nz, ghost: ghost,
		perField: sk * (nz + 2*ghost),
		policy:   pol,
		byName:   map[string]int{},
		groups:   map[string][]int{},
	}
}

// Policy returns the set's precision policy.
func (s *FieldSet) Policy() Policy { return s.policy }

// Register records one field and returns its id. Ids are dense and assigned
// in call order; consecutive same-width registrations share a contiguous
// arena run. Register panics on a duplicate name or after Build.
func (s *FieldSet) Register(m FieldMeta) int {
	if s.built {
		panic("grid: FieldSet.Register after Build")
	}
	if m.Name == "" {
		panic("grid: FieldSet.Register with empty name")
	}
	if _, dup := s.byName[m.Name]; dup {
		panic("grid: FieldSet duplicate field name " + m.Name)
	}
	st := m.Storage
	if st == StorageAuto {
		st = s.policy.StorageFor(m.Role)
	}
	slot := 0
	for _, prev := range s.storage {
		if prev == st {
			slot++
		}
	}
	id := len(s.metas)
	s.byName[m.Name] = id
	s.metas = append(s.metas, m)
	s.storage = append(s.storage, st)
	s.slot = append(s.slot, slot)
	if m.Group != "" {
		s.groups[m.Group] = append(s.groups[m.Group], id)
	}
	return id
}

// Build allocates one arena per storage width and carves one zeroed Field3
// per registered field, in registration order. Each Field3's backing slice
// is a length- and capacity-limited view of its arena, so per-field
// operations cannot overrun into a neighbour while bank operations over Span
// see the underlying contiguous run.
func (s *FieldSet) Build() {
	if s.built {
		panic("grid: FieldSet.Build called twice")
	}
	n64, n32 := 0, 0
	for _, st := range s.storage {
		if st == StorageFloat32 {
			n32++
		} else {
			n64++
		}
	}
	s.arena = make([]float64, s.perField*n64)
	s.arena32 = make([]float32, s.perField*n32)
	s.fields = make([]*Field3, len(s.metas))
	for id := range s.metas {
		f := &Field3{Nx: s.nx, Ny: s.ny, Nz: s.nz, G: s.ghost}
		f.sj = s.nx + 2*s.ghost
		f.sk = f.sj * (s.ny + 2*s.ghost)
		f.off = s.ghost*f.sk + s.ghost*f.sj + s.ghost
		lo := s.slot[id] * s.perField
		if s.storage[id] == StorageFloat32 {
			f.Data32 = s.arena32[lo : lo+s.perField : lo+s.perField]
		} else {
			f.Data = s.arena[lo : lo+s.perField : lo+s.perField]
		}
		s.fields[id] = f
	}
	s.built = true
}

// Len returns the number of registered fields.
func (s *FieldSet) Len() int { return len(s.metas) }

// FieldLen returns the arena values per field (full storage incl. ghosts).
func (s *FieldSet) FieldLen() int { return s.perField }

// Field returns the field with the given id. Valid after Build.
func (s *FieldSet) Field(id int) *Field3 {
	s.mustBuilt()
	return s.fields[id]
}

// Meta returns the metadata of the field with the given id.
func (s *FieldSet) Meta(id int) FieldMeta { return s.metas[id] }

// Storage returns the resolved storage class of the field with the given id
// (never StorageAuto).
func (s *FieldSet) Storage(id int) Storage { return s.storage[id] }

// ID returns the id of the named field, or -1 when absent.
func (s *FieldSet) ID(name string) int {
	if id, ok := s.byName[name]; ok {
		return id
	}
	return -1
}

// ByName returns the named field, or nil when absent. Valid after Build.
func (s *FieldSet) ByName(name string) *Field3 {
	s.mustBuilt()
	if id, ok := s.byName[name]; ok {
		return s.fields[id]
	}
	return nil
}

// Group returns the fields of a halo-exchange group in registration order.
// The returned slice is freshly allocated; hoist it, don't rebuild per step.
func (s *FieldSet) Group(name string) []*Field3 {
	s.mustBuilt()
	ids := s.groups[name]
	out := make([]*Field3, len(ids))
	for i, id := range ids {
		out[i] = s.fields[id]
	}
	return out
}

// Span returns the contiguous float64 arena run backing count consecutively
// registered fields starting at firstID — a bank. Bank-wide stride-1 loops
// over the span are bitwise-equivalent to per-field full-storage loops in
// registration order. Every field in the range must be float64 storage, and
// under any policy the conserved/register banks are: a policy that demoted
// one would panic here at startup, not corrupt a bank silently.
func (s *FieldSet) Span(firstID, count int) []float64 {
	s.mustBuilt()
	if firstID < 0 || count < 0 || firstID+count > len(s.metas) {
		panic(fmt.Sprintf("grid: FieldSet.Span(%d,%d) outside %d fields", firstID, count, len(s.metas)))
	}
	for id := firstID; id < firstID+count; id++ {
		if s.storage[id] != StorageFloat64 {
			panic(fmt.Sprintf("grid: FieldSet.Span(%d,%d) crosses float32 field %q",
				firstID, count, s.metas[id].Name))
		}
	}
	if count == 0 {
		return nil
	}
	lo := s.slot[firstID] * s.perField
	hi := lo + count*s.perField
	return s.arena[lo:hi:hi]
}

// Checkpointed returns the ids of checkpoint-included fields (Ckpt != "")
// in registration order — the on-disk variable order, independent of each
// field's storage width.
func (s *FieldSet) Checkpointed() []int {
	var ids []int
	for id, m := range s.metas {
		if m.Ckpt != "" {
			ids = append(ids, id)
		}
	}
	return ids
}

// Names returns every registered name in registration order.
func (s *FieldSet) Names() []string {
	out := make([]string, len(s.metas))
	for id, m := range s.metas {
		out[id] = m.Name
	}
	return out
}

func (s *FieldSet) mustBuilt() {
	if !s.built {
		panic("grid: FieldSet used before Build")
	}
}

// Scratch allocates one standalone named scratch field through the registry
// machinery. It is the sanctioned way for tools outside the solver (viz
// staging, turbulence seeding) to obtain a Field3 without calling the raw
// constructor, keeping the one-source-of-truth lint clean.
func Scratch(name string, nx, ny, nz, ghost int) *Field3 {
	s := NewFieldSet(nx, ny, nz, ghost)
	s.Register(FieldMeta{Name: name, Role: RoleScratch, Species: -1})
	s.Build()
	return s.Field(0)
}
