package grid

import "fmt"

// FieldSet is a registry-plus-arena owning every field of a solver block.
// S3D's Fortran core keeps all solution registers in a handful of contiguous
// arrays with a fixed variable ordering (paper §2, §4), which is what makes
// its halo packing, RK 2N register updates and restart I/O cheap and uniform.
// FieldSet recovers that property: each field is registered exactly once with
// metadata (stable name, role, species index, halo-exchange group, checkpoint
// inclusion), and Build carves every Field3's backing storage out of one
// contiguous arena in registration order. Fields registered consecutively
// therefore occupy consecutive arena runs — a bank — and bank-wide operations
// (the RK register update, conservation sums) become single stride-1 loops
// over Span instead of per-field calls.
//
// Registration order is ABI: it fixes the arena layout, the halo-group pack
// order and the checkpoint variable order. Consumers resolve fields by name
// or group; nothing outside the registry re-derives field identity.
type FieldSet struct {
	nx, ny, nz, ghost int
	perField          int // arena floats per field

	metas  []FieldMeta
	fields []*Field3
	byName map[string]int
	groups map[string][]int // halo group → ids in registration order

	arena []float64 // non-nil once Build has run
}

// Role classifies a registered field; it is descriptive metadata for
// inventory endpoints and pickers, not behaviour.
type Role int

const (
	// RoleConserved marks a conserved-variable register (a Q component).
	RoleConserved Role = iota
	// RoleRegister marks an RK integration register (dQ, rhs).
	RoleRegister
	// RolePrimitive marks a primitive decoded from the conserved state.
	RolePrimitive
	// RoleTransport marks a transport coefficient (μ, λ, D_k).
	RoleTransport
	// RoleGradient marks a stored spatial derivative.
	RoleGradient
	// RoleFlux marks an assembled flux component.
	RoleFlux
	// RoleScratch marks reusable working storage.
	RoleScratch
)

// String returns the role's stable lower-case name (used in /fields JSON).
func (r Role) String() string {
	switch r {
	case RoleConserved:
		return "conserved"
	case RoleRegister:
		return "register"
	case RolePrimitive:
		return "primitive"
	case RoleTransport:
		return "transport"
	case RoleGradient:
		return "gradient"
	case RoleFlux:
		return "flux"
	case RoleScratch:
		return "scratch"
	}
	return fmt.Sprintf("role(%d)", int(r))
}

// FieldMeta describes one registered field.
type FieldMeta struct {
	// Name is the stable registry name; unique within the set. Viz, in-situ
	// extraction and the /fields endpoint resolve fields by this name.
	Name string
	// Role classifies the field.
	Role Role
	// Species is the species index for per-species fields, -1 otherwise.
	Species int
	// Group is the halo-exchange group ("" when the field is never
	// exchanged). Group order is registration order.
	Group string
	// Ckpt is the on-disk checkpoint variable name ("" when the field is
	// not checkpointed). Checkpoint order is registration order.
	Ckpt string
}

// NewFieldSet creates an empty registry for blocks of the given interior
// extents and ghost width.
func NewFieldSet(nx, ny, nz, ghost int) *FieldSet {
	sj := nx + 2*ghost
	sk := sj * (ny + 2*ghost)
	return &FieldSet{
		nx: nx, ny: ny, nz: nz, ghost: ghost,
		perField: sk * (nz + 2*ghost),
		byName:   map[string]int{},
		groups:   map[string][]int{},
	}
}

// Register records one field and returns its id. Ids are dense and assigned
// in call order; consecutive registrations share a contiguous arena run.
// Register panics on a duplicate name or after Build.
func (s *FieldSet) Register(m FieldMeta) int {
	if s.arena != nil {
		panic("grid: FieldSet.Register after Build")
	}
	if m.Name == "" {
		panic("grid: FieldSet.Register with empty name")
	}
	if _, dup := s.byName[m.Name]; dup {
		panic("grid: FieldSet duplicate field name " + m.Name)
	}
	id := len(s.metas)
	s.byName[m.Name] = id
	s.metas = append(s.metas, m)
	if m.Group != "" {
		s.groups[m.Group] = append(s.groups[m.Group], id)
	}
	return id
}

// Build allocates the arena and carves one zeroed Field3 per registered
// field, in registration order. Each Field3's Data is a length- and
// capacity-limited view of the arena, so per-field operations cannot
// overrun into a neighbour while bank operations over Span see the
// underlying contiguous run.
func (s *FieldSet) Build() {
	if s.arena != nil {
		panic("grid: FieldSet.Build called twice")
	}
	s.arena = make([]float64, s.perField*len(s.metas))
	s.fields = make([]*Field3, len(s.metas))
	for id := range s.metas {
		f := &Field3{Nx: s.nx, Ny: s.ny, Nz: s.nz, G: s.ghost}
		f.sj = s.nx + 2*s.ghost
		f.sk = f.sj * (s.ny + 2*s.ghost)
		f.off = s.ghost*f.sk + s.ghost*f.sj + s.ghost
		lo := id * s.perField
		f.Data = s.arena[lo : lo+s.perField : lo+s.perField]
		s.fields[id] = f
	}
}

// Len returns the number of registered fields.
func (s *FieldSet) Len() int { return len(s.metas) }

// FieldLen returns the arena floats per field (full storage incl. ghosts).
func (s *FieldSet) FieldLen() int { return s.perField }

// Field returns the field with the given id. Valid after Build.
func (s *FieldSet) Field(id int) *Field3 {
	s.mustBuilt()
	return s.fields[id]
}

// Meta returns the metadata of the field with the given id.
func (s *FieldSet) Meta(id int) FieldMeta { return s.metas[id] }

// ID returns the id of the named field, or -1 when absent.
func (s *FieldSet) ID(name string) int {
	if id, ok := s.byName[name]; ok {
		return id
	}
	return -1
}

// ByName returns the named field, or nil when absent. Valid after Build.
func (s *FieldSet) ByName(name string) *Field3 {
	s.mustBuilt()
	if id, ok := s.byName[name]; ok {
		return s.fields[id]
	}
	return nil
}

// Group returns the fields of a halo-exchange group in registration order.
// The returned slice is freshly allocated; hoist it, don't rebuild per step.
func (s *FieldSet) Group(name string) []*Field3 {
	s.mustBuilt()
	ids := s.groups[name]
	out := make([]*Field3, len(ids))
	for i, id := range ids {
		out[i] = s.fields[id]
	}
	return out
}

// Span returns the contiguous arena run backing count consecutively
// registered fields starting at firstID — a bank. Bank-wide stride-1 loops
// over the span are bitwise-equivalent to per-field full-storage loops in
// registration order.
func (s *FieldSet) Span(firstID, count int) []float64 {
	s.mustBuilt()
	if firstID < 0 || count < 0 || firstID+count > len(s.metas) {
		panic(fmt.Sprintf("grid: FieldSet.Span(%d,%d) outside %d fields", firstID, count, len(s.metas)))
	}
	lo := firstID * s.perField
	hi := lo + count*s.perField
	return s.arena[lo:hi:hi]
}

// Checkpointed returns the ids of checkpoint-included fields (Ckpt != "")
// in registration order — the on-disk variable order.
func (s *FieldSet) Checkpointed() []int {
	var ids []int
	for id, m := range s.metas {
		if m.Ckpt != "" {
			ids = append(ids, id)
		}
	}
	return ids
}

// Names returns every registered name in registration order.
func (s *FieldSet) Names() []string {
	out := make([]string, len(s.metas))
	for id, m := range s.metas {
		out[id] = m.Name
	}
	return out
}

func (s *FieldSet) mustBuilt() {
	if s.arena == nil {
		panic("grid: FieldSet used before Build")
	}
}

// Scratch allocates one standalone named scratch field through the registry
// machinery. It is the sanctioned way for tools outside the solver (viz
// staging, turbulence seeding) to obtain a Field3 without calling the raw
// constructor, keeping the one-source-of-truth lint clean.
func Scratch(name string, nx, ny, nz, ghost int) *Field3 {
	s := NewFieldSet(nx, ny, nz, ghost)
	s.Register(FieldMeta{Name: name, Role: RoleScratch, Species: -1})
	s.Build()
	return s.Field(0)
}
