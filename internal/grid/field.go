package grid

import "fmt"

// Ghost is the ghost-layer width used throughout the solver. The 8th-order
// first derivative needs four neighbours per side (9-point stencil) and the
// 10th-order filter needs five (11-point stencil, paper §2.6), so five ghost
// layers cover both.
const Ghost = 5

// Field3 is a scalar field on a 3-D structured block, stored flat with
// ghost layers on every side. The innermost (fastest) index is i, matching
// the memory layout of the original Fortran code transposed — unit-stride
// inner loops are preserved.
type Field3 struct {
	Nx, Ny, Nz int // interior extents
	G          int // ghost width

	sj, sk int // strides for j and k
	off    int // offset of interior point (0,0,0)
	Data   []float64
}

// NewField3 allocates a zeroed field with the solver-wide ghost width for
// the interior extents of g.
func NewField3(g *Grid) *Field3 { return NewField3Ghost(g.Nx, g.Ny, g.Nz, Ghost) }

// NewField3Ghost allocates a zeroed field with explicit extents and ghost width.
func NewField3Ghost(nx, ny, nz, ghost int) *Field3 {
	f := &Field3{Nx: nx, Ny: ny, Nz: nz, G: ghost}
	f.sj = nx + 2*ghost
	f.sk = f.sj * (ny + 2*ghost)
	f.off = ghost*f.sk + ghost*f.sj + ghost
	f.Data = make([]float64, f.sk*(nz+2*ghost))
	return f
}

// Idx returns the flat index of point (i, j, k); ghost points are addressed
// with negative indices or indices ≥ the interior extent.
func (f *Field3) Idx(i, j, k int) int { return f.off + k*f.sk + j*f.sj + i }

// Strides returns the flat-index strides (di, dj, dk) = (1, sj, sk).
func (f *Field3) Strides() (int, int, int) { return 1, f.sj, f.sk }

// At returns the value at (i, j, k).
func (f *Field3) At(i, j, k int) float64 { return f.Data[f.Idx(i, j, k)] }

// Set stores v at (i, j, k).
func (f *Field3) Set(i, j, k int, v float64) { f.Data[f.Idx(i, j, k)] = v }

// Add accumulates v at (i, j, k).
func (f *Field3) Add(i, j, k int, v float64) { f.Data[f.Idx(i, j, k)] += v }

// Fill sets every value (including ghosts) to v.
func (f *Field3) Fill(v float64) {
	for i := range f.Data {
		f.Data[i] = v
	}
}

// CopyFrom copies the full contents (including ghosts) of src, which must
// have identical shape.
func (f *Field3) CopyFrom(src *Field3) {
	f.mustMatch(src)
	copy(f.Data, src.Data)
}

// Clone returns a deep copy of the field.
func (f *Field3) Clone() *Field3 {
	c := NewField3Ghost(f.Nx, f.Ny, f.Nz, f.G)
	copy(c.Data, f.Data)
	return c
}

// AXPY computes f += a*x over the whole storage (interior and ghosts).
func (f *Field3) AXPY(a float64, x *Field3) {
	f.mustMatch(x)
	fd, xd := f.Data, x.Data
	for i := range fd {
		fd[i] += a * xd[i]
	}
}

// Scale multiplies the whole storage by a.
func (f *Field3) Scale(a float64) {
	for i := range f.Data {
		f.Data[i] *= a
	}
}

// Row returns the contiguous slice of Nx values for interior row (·, j, k):
// Row(j, k)[i] aliases At(i, j, k). The unit-stride access path for tiled
// kernels; the slice is a view into the field's storage.
func (f *Field3) Row(j, k int) []float64 {
	base := f.Idx(0, j, k)
	return f.Data[base : base+f.Nx]
}

// AXPYRange computes f += a*x over the index box [lo, hi) (exclusive),
// addressed in interior coordinates; ghost points may be included via
// negative indices. Sweeping the interior tile-by-tile with AXPYRange visits
// each point exactly once in the same i-fastest order as a full-interior
// loop, so results are independent of the tiling.
func (f *Field3) AXPYRange(a float64, x *Field3, lo, hi [3]int) {
	f.mustMatch(x)
	fd, xd := f.Data, x.Data
	n := hi[0] - lo[0]
	for k := lo[2]; k < hi[2]; k++ {
		for j := lo[1]; j < hi[1]; j++ {
			row := f.Idx(lo[0], j, k)
			for i := 0; i < n; i++ {
				fd[row+i] += a * xd[row+i]
			}
		}
	}
}

// ScaleRange multiplies the index box [lo, hi) by a.
func (f *Field3) ScaleRange(a float64, lo, hi [3]int) {
	fd := f.Data
	n := hi[0] - lo[0]
	for k := lo[2]; k < hi[2]; k++ {
		for j := lo[1]; j < hi[1]; j++ {
			row := f.Idx(lo[0], j, k)
			for i := 0; i < n; i++ {
				fd[row+i] *= a
			}
		}
	}
}

// SumRange returns the sum over the index box [lo, hi), accumulated in the
// same i-fastest order as SumInterior restricted to the box.
func (f *Field3) SumRange(lo, hi [3]int) float64 {
	fd := f.Data
	n := hi[0] - lo[0]
	var s float64
	for k := lo[2]; k < hi[2]; k++ {
		for j := lo[1]; j < hi[1]; j++ {
			row := f.Idx(lo[0], j, k)
			for i := 0; i < n; i++ {
				s += fd[row+i]
			}
		}
	}
	return s
}

// CopyRange copies the index box [lo, hi) from src (same shape required).
func (f *Field3) CopyRange(src *Field3, lo, hi [3]int) {
	f.mustMatch(src)
	fd, sd := f.Data, src.Data
	n := hi[0] - lo[0]
	for k := lo[2]; k < hi[2]; k++ {
		for j := lo[1]; j < hi[1]; j++ {
			row := f.Idx(lo[0], j, k)
			copy(fd[row:row+n], sd[row:row+n])
		}
	}
}

// Each calls fn for every interior point.
func (f *Field3) Each(fn func(i, j, k int, v float64)) {
	for k := 0; k < f.Nz; k++ {
		for j := 0; j < f.Ny; j++ {
			row := f.Idx(0, j, k)
			for i := 0; i < f.Nx; i++ {
				fn(i, j, k, f.Data[row+i])
			}
		}
	}
}

// Map replaces every interior value by fn(i, j, k, v).
func (f *Field3) Map(fn func(i, j, k int, v float64) float64) {
	for k := 0; k < f.Nz; k++ {
		for j := 0; j < f.Ny; j++ {
			row := f.Idx(0, j, k)
			for i := 0; i < f.Nx; i++ {
				f.Data[row+i] = fn(i, j, k, f.Data[row+i])
			}
		}
	}
}

// MinMax returns the interior minimum and maximum. It is the primitive
// behind S3D's min/max monitoring files (paper §9).
func (f *Field3) MinMax() (min, max float64) {
	first := true
	for k := 0; k < f.Nz; k++ {
		for j := 0; j < f.Ny; j++ {
			row := f.Idx(0, j, k)
			for i := 0; i < f.Nx; i++ {
				v := f.Data[row+i]
				if first {
					min, max, first = v, v, false
					continue
				}
				if v < min {
					min = v
				}
				if v > max {
					max = v
				}
			}
		}
	}
	return min, max
}

// SumInterior returns the sum over interior points.
func (f *Field3) SumInterior() float64 {
	var s float64
	for k := 0; k < f.Nz; k++ {
		for j := 0; j < f.Ny; j++ {
			row := f.Idx(0, j, k)
			for i := 0; i < f.Nx; i++ {
				s += f.Data[row+i]
			}
		}
	}
	return s
}

// WrapPeriodic fills the ghost layers along the axis by periodic wraparound
// of the interior values. It is used for single-rank periodic directions;
// multi-rank runs fill ghosts through halo exchange instead.
func (f *Field3) WrapPeriodic(a Axis) {
	g := f.G
	switch a {
	case X:
		n := f.Nx
		for k := -g; k < f.Nz+g; k++ {
			for j := -g; j < f.Ny+g; j++ {
				for l := 1; l <= g; l++ {
					f.Set(-l, j, k, f.At(n-l, j, k))
					f.Set(n-1+l, j, k, f.At(l-1, j, k))
				}
			}
		}
	case Y:
		n := f.Ny
		for k := -g; k < f.Nz+g; k++ {
			for l := 1; l <= g; l++ {
				for i := -g; i < f.Nx+g; i++ {
					f.Set(i, -l, k, f.At(i, n-l, k))
					f.Set(i, n-1+l, k, f.At(i, l-1, k))
				}
			}
		}
	case Z:
		n := f.Nz
		for l := 1; l <= g; l++ {
			for j := -g; j < f.Ny+g; j++ {
				for i := -g; i < f.Nx+g; i++ {
					f.Set(i, j, -l, f.At(i, j, n-l))
					f.Set(i, j, n-1+l, f.At(i, j, l-1))
				}
			}
		}
	}
}

// ExtrapolateGhosts fills ghost layers along the axis by zeroth-order
// extrapolation of the boundary plane. Non-periodic boundaries use one-sided
// interior stencils for derivatives, so these values only influence the
// filter, which degrades gracefully to the boundary-biased form.
func (f *Field3) ExtrapolateGhosts(a Axis) {
	g := f.G
	switch a {
	case X:
		n := f.Nx
		for k := -g; k < f.Nz+g; k++ {
			for j := -g; j < f.Ny+g; j++ {
				for l := 1; l <= g; l++ {
					f.Set(-l, j, k, f.At(0, j, k))
					f.Set(n-1+l, j, k, f.At(n-1, j, k))
				}
			}
		}
	case Y:
		n := f.Ny
		for k := -g; k < f.Nz+g; k++ {
			for l := 1; l <= g; l++ {
				for i := -g; i < f.Nx+g; i++ {
					f.Set(i, -l, k, f.At(i, 0, k))
					f.Set(i, n-1+l, k, f.At(i, n-1, k))
				}
			}
		}
	case Z:
		n := f.Nz
		for l := 1; l <= g; l++ {
			for j := -g; j < f.Ny+g; j++ {
				for i := -g; i < f.Nx+g; i++ {
					f.Set(i, j, -l, f.At(i, j, 0))
					f.Set(i, j, n-1+l, f.At(i, j, n-1))
				}
			}
		}
	}
}

func (f *Field3) mustMatch(x *Field3) {
	if f.Nx != x.Nx || f.Ny != x.Ny || f.Nz != x.Nz || f.G != x.G {
		panic(fmt.Sprintf("grid: field shape mismatch %dx%dx%d/g%d vs %dx%dx%d/g%d",
			f.Nx, f.Ny, f.Nz, f.G, x.Nx, x.Ny, x.Nz, x.G))
	}
}
