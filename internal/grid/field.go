package grid

import "fmt"

// Ghost is the ghost-layer width used throughout the solver. The 8th-order
// first derivative needs four neighbours per side (9-point stencil) and the
// 10th-order filter needs five (11-point stencil, paper §2.6), so five ghost
// layers cover both.
const Ghost = 5

// Float constrains the storage element widths a field may use. Kernels that
// must serve both widths are written once, generic over Float, and always
// compute in float64 regardless of the storage width.
type Float interface {
	~float32 | ~float64
}

// Field3 is a scalar field on a 3-D structured block, stored flat with
// ghost layers on every side. The innermost (fastest) index is i, matching
// the memory layout of the original Fortran code transposed — unit-stride
// inner loops are preserved.
//
// Storage is either float64 (Data non-nil) or float32 (Data32 non-nil),
// decided by the owning FieldSet's precision policy; exactly one of the two
// backing slices is set. Float32 fields store narrow but are always read and
// accumulated at float64: every accessor below widens on load and rounds
// exactly once on store.
type Field3 struct {
	Nx, Ny, Nz int // interior extents
	G          int // ghost width

	sj, sk int // strides for j and k
	off    int // offset of interior point (0,0,0)

	Data   []float64 // float64 storage; nil for float32 fields
	Data32 []float32 // float32 storage; nil for float64 fields
}

// NewField3 allocates a zeroed float64 field with the solver-wide ghost
// width for the interior extents of g.
func NewField3(g *Grid) *Field3 { return NewField3Ghost(g.Nx, g.Ny, g.Nz, Ghost) }

// NewField3Ghost allocates a zeroed float64 field with explicit extents and
// ghost width.
func NewField3Ghost(nx, ny, nz, ghost int) *Field3 {
	f := &Field3{Nx: nx, Ny: ny, Nz: nz, G: ghost}
	f.sj = nx + 2*ghost
	f.sk = f.sj * (ny + 2*ghost)
	f.off = ghost*f.sk + ghost*f.sj + ghost
	f.Data = make([]float64, f.sk*(nz+2*ghost))
	return f
}

// Storage reports the field's storage width.
func (f *Field3) Storage() Storage {
	if f.Data32 != nil {
		return StorageFloat32
	}
	return StorageFloat64
}

// Len returns the full storage length (interior plus ghosts).
func (f *Field3) Len() int {
	if f.Data32 != nil {
		return len(f.Data32)
	}
	return len(f.Data)
}

// Idx returns the flat index of point (i, j, k); ghost points are addressed
// with negative indices or indices ≥ the interior extent.
func (f *Field3) Idx(i, j, k int) int { return f.off + k*f.sk + j*f.sj + i }

// Strides returns the flat-index strides (di, dj, dk) = (1, sj, sk).
func (f *Field3) Strides() (int, int, int) { return 1, f.sj, f.sk }

// At returns the value at (i, j, k), widened to float64 for narrow storage.
func (f *Field3) At(i, j, k int) float64 {
	if f.Data32 != nil {
		return float64(f.Data32[f.Idx(i, j, k)])
	}
	return f.Data[f.Idx(i, j, k)]
}

// Set stores v at (i, j, k), rounding once for narrow storage.
func (f *Field3) Set(i, j, k int, v float64) {
	if f.Data32 != nil {
		f.Data32[f.Idx(i, j, k)] = float32(v)
		return
	}
	f.Data[f.Idx(i, j, k)] = v
}

// Add accumulates v at (i, j, k); narrow storage promotes to float64 for the
// addition and rounds once on store.
func (f *Field3) Add(i, j, k int, v float64) {
	if f.Data32 != nil {
		p := f.Idx(i, j, k)
		f.Data32[p] = float32(float64(f.Data32[p]) + v)
		return
	}
	f.Data[f.Idx(i, j, k)] += v
}

// Fill sets every value (including ghosts) to v.
func (f *Field3) Fill(v float64) {
	if f.Data32 != nil {
		w := float32(v)
		for i := range f.Data32 {
			f.Data32[i] = w
		}
		return
	}
	for i := range f.Data {
		f.Data[i] = v
	}
}

// CopyFrom copies the full contents (including ghosts) of src, which must
// have identical shape and storage width.
func (f *Field3) CopyFrom(src *Field3) {
	f.mustMatch(src)
	if f.Data32 != nil {
		copy(f.Data32, src.Data32)
		return
	}
	copy(f.Data, src.Data)
}

// Clone returns a deep copy of the field, preserving storage width.
func (f *Field3) Clone() *Field3 {
	c := &Field3{Nx: f.Nx, Ny: f.Ny, Nz: f.Nz, G: f.G, sj: f.sj, sk: f.sk, off: f.off}
	if f.Data32 != nil {
		c.Data32 = append([]float32(nil), f.Data32...)
	} else {
		c.Data = append([]float64(nil), f.Data...)
	}
	return c
}

// AXPY computes f += a*x over the whole storage (interior and ghosts).
func (f *Field3) AXPY(a float64, x *Field3) {
	f.mustMatch(x)
	if f.Data32 != nil {
		fd, xd := f.Data32, x.Data32
		for i := range fd {
			fd[i] = float32(float64(fd[i]) + a*float64(xd[i]))
		}
		return
	}
	fd, xd := f.Data, x.Data
	for i := range fd {
		fd[i] += a * xd[i]
	}
}

// Scale multiplies the whole storage by a.
func (f *Field3) Scale(a float64) {
	if f.Data32 != nil {
		for i := range f.Data32 {
			f.Data32[i] = float32(float64(f.Data32[i]) * a)
		}
		return
	}
	for i := range f.Data {
		f.Data[i] *= a
	}
}

// Row returns the contiguous slice of Nx values for interior row (·, j, k):
// Row(j, k)[i] aliases At(i, j, k). The unit-stride access path for tiled
// kernels; the slice is a view into the field's storage. Row is only valid
// for float64 fields — narrow fields must go through RowInto, which widens.
func (f *Field3) Row(j, k int) []float64 {
	if f.Data == nil {
		panic("grid: Field3.Row on float32 storage (use RowInto)")
	}
	base := f.Idx(0, j, k)
	return f.Data[base : base+f.Nx]
}

// RowInto returns interior row (·, j, k) as float64 values. For float64
// storage it returns the live view (no copy, identical to Row); for float32
// storage it widens into buf, which must hold at least Nx values.
func (f *Field3) RowInto(buf []float64, j, k int) []float64 {
	base := f.Idx(0, j, k)
	if f.Data != nil {
		return f.Data[base : base+f.Nx]
	}
	buf = buf[:f.Nx]
	src := f.Data32[base : base+f.Nx]
	for i := range buf {
		buf[i] = float64(src[i])
	}
	return buf
}

// SetRow stores src (length ≥ Nx) into interior row (·, j, k), rounding
// once per value for narrow storage.
func (f *Field3) SetRow(j, k int, src []float64) {
	base := f.Idx(0, j, k)
	if f.Data != nil {
		copy(f.Data[base:base+f.Nx], src)
		return
	}
	dst := f.Data32[base : base+f.Nx]
	for i := range dst {
		dst[i] = float32(src[i])
	}
}

// AXPYRange computes f += a*x over the index box [lo, hi) (exclusive),
// addressed in interior coordinates; ghost points may be included via
// negative indices. Sweeping the interior tile-by-tile with AXPYRange visits
// each point exactly once in the same i-fastest order as a full-interior
// loop, so results are independent of the tiling.
func (f *Field3) AXPYRange(a float64, x *Field3, lo, hi [3]int) {
	f.mustMatch(x)
	n := hi[0] - lo[0]
	if f.Data32 != nil {
		fd, xd := f.Data32, x.Data32
		for k := lo[2]; k < hi[2]; k++ {
			for j := lo[1]; j < hi[1]; j++ {
				row := f.Idx(lo[0], j, k)
				for i := 0; i < n; i++ {
					fd[row+i] = float32(float64(fd[row+i]) + a*float64(xd[row+i]))
				}
			}
		}
		return
	}
	fd, xd := f.Data, x.Data
	for k := lo[2]; k < hi[2]; k++ {
		for j := lo[1]; j < hi[1]; j++ {
			row := f.Idx(lo[0], j, k)
			for i := 0; i < n; i++ {
				fd[row+i] += a * xd[row+i]
			}
		}
	}
}

// ScaleRange multiplies the index box [lo, hi) by a.
func (f *Field3) ScaleRange(a float64, lo, hi [3]int) {
	n := hi[0] - lo[0]
	if f.Data32 != nil {
		fd := f.Data32
		for k := lo[2]; k < hi[2]; k++ {
			for j := lo[1]; j < hi[1]; j++ {
				row := f.Idx(lo[0], j, k)
				for i := 0; i < n; i++ {
					fd[row+i] = float32(float64(fd[row+i]) * a)
				}
			}
		}
		return
	}
	fd := f.Data
	for k := lo[2]; k < hi[2]; k++ {
		for j := lo[1]; j < hi[1]; j++ {
			row := f.Idx(lo[0], j, k)
			for i := 0; i < n; i++ {
				fd[row+i] *= a
			}
		}
	}
}

// SumRange returns the sum over the index box [lo, hi), accumulated in
// float64 in the same i-fastest order as SumInterior restricted to the box.
func (f *Field3) SumRange(lo, hi [3]int) float64 {
	n := hi[0] - lo[0]
	var s float64
	if f.Data32 != nil {
		fd := f.Data32
		for k := lo[2]; k < hi[2]; k++ {
			for j := lo[1]; j < hi[1]; j++ {
				row := f.Idx(lo[0], j, k)
				for i := 0; i < n; i++ {
					s += float64(fd[row+i])
				}
			}
		}
		return s
	}
	fd := f.Data
	for k := lo[2]; k < hi[2]; k++ {
		for j := lo[1]; j < hi[1]; j++ {
			row := f.Idx(lo[0], j, k)
			for i := 0; i < n; i++ {
				s += fd[row+i]
			}
		}
	}
	return s
}

// CopyRange copies the index box [lo, hi) from src (same shape and storage
// width required).
func (f *Field3) CopyRange(src *Field3, lo, hi [3]int) {
	f.mustMatch(src)
	n := hi[0] - lo[0]
	if f.Data32 != nil {
		fd, sd := f.Data32, src.Data32
		for k := lo[2]; k < hi[2]; k++ {
			for j := lo[1]; j < hi[1]; j++ {
				row := f.Idx(lo[0], j, k)
				copy(fd[row:row+n], sd[row:row+n])
			}
		}
		return
	}
	fd, sd := f.Data, src.Data
	for k := lo[2]; k < hi[2]; k++ {
		for j := lo[1]; j < hi[1]; j++ {
			row := f.Idx(lo[0], j, k)
			copy(fd[row:row+n], sd[row:row+n])
		}
	}
}

// Each calls fn for every interior point, widening narrow storage.
func (f *Field3) Each(fn func(i, j, k int, v float64)) {
	if f.Data32 != nil {
		for k := 0; k < f.Nz; k++ {
			for j := 0; j < f.Ny; j++ {
				row := f.Idx(0, j, k)
				for i := 0; i < f.Nx; i++ {
					fn(i, j, k, float64(f.Data32[row+i]))
				}
			}
		}
		return
	}
	for k := 0; k < f.Nz; k++ {
		for j := 0; j < f.Ny; j++ {
			row := f.Idx(0, j, k)
			for i := 0; i < f.Nx; i++ {
				fn(i, j, k, f.Data[row+i])
			}
		}
	}
}

// Map replaces every interior value by fn(i, j, k, v).
func (f *Field3) Map(fn func(i, j, k int, v float64) float64) {
	if f.Data32 != nil {
		for k := 0; k < f.Nz; k++ {
			for j := 0; j < f.Ny; j++ {
				row := f.Idx(0, j, k)
				for i := 0; i < f.Nx; i++ {
					f.Data32[row+i] = float32(fn(i, j, k, float64(f.Data32[row+i])))
				}
			}
		}
		return
	}
	for k := 0; k < f.Nz; k++ {
		for j := 0; j < f.Ny; j++ {
			row := f.Idx(0, j, k)
			for i := 0; i < f.Nx; i++ {
				f.Data[row+i] = fn(i, j, k, f.Data[row+i])
			}
		}
	}
}

// MinMax returns the interior minimum and maximum. It is the primitive
// behind S3D's min/max monitoring files (paper §9).
func (f *Field3) MinMax() (min, max float64) {
	first := true
	for k := 0; k < f.Nz; k++ {
		for j := 0; j < f.Ny; j++ {
			row := f.Idx(0, j, k)
			for i := 0; i < f.Nx; i++ {
				var v float64
				if f.Data32 != nil {
					v = float64(f.Data32[row+i])
				} else {
					v = f.Data[row+i]
				}
				if first {
					min, max, first = v, v, false
					continue
				}
				if v < min {
					min = v
				}
				if v > max {
					max = v
				}
			}
		}
	}
	return min, max
}

// SumInterior returns the sum over interior points, accumulated in float64.
func (f *Field3) SumInterior() float64 {
	var s float64
	for k := 0; k < f.Nz; k++ {
		for j := 0; j < f.Ny; j++ {
			row := f.Idx(0, j, k)
			if f.Data32 != nil {
				for i := 0; i < f.Nx; i++ {
					s += float64(f.Data32[row+i])
				}
			} else {
				for i := 0; i < f.Nx; i++ {
					s += f.Data[row+i]
				}
			}
		}
	}
	return s
}

// WrapPeriodic fills the ghost layers along the axis by periodic wraparound
// of the interior values. It is used for single-rank periodic directions;
// multi-rank runs fill ghosts through halo exchange instead.
func (f *Field3) WrapPeriodic(a Axis) {
	g := f.G
	switch a {
	case X:
		n := f.Nx
		for k := -g; k < f.Nz+g; k++ {
			for j := -g; j < f.Ny+g; j++ {
				for l := 1; l <= g; l++ {
					f.Set(-l, j, k, f.At(n-l, j, k))
					f.Set(n-1+l, j, k, f.At(l-1, j, k))
				}
			}
		}
	case Y:
		n := f.Ny
		for k := -g; k < f.Nz+g; k++ {
			for l := 1; l <= g; l++ {
				for i := -g; i < f.Nx+g; i++ {
					f.Set(i, -l, k, f.At(i, n-l, k))
					f.Set(i, n-1+l, k, f.At(i, l-1, k))
				}
			}
		}
	case Z:
		n := f.Nz
		for l := 1; l <= g; l++ {
			for j := -g; j < f.Ny+g; j++ {
				for i := -g; i < f.Nx+g; i++ {
					f.Set(i, j, -l, f.At(i, j, n-l))
					f.Set(i, j, n-1+l, f.At(i, j, l-1))
				}
			}
		}
	}
}

// ExtrapolateGhosts fills ghost layers along the axis by zeroth-order
// extrapolation of the boundary plane. Non-periodic boundaries use one-sided
// interior stencils for derivatives, so these values only influence the
// filter, which degrades gracefully to the boundary-biased form.
func (f *Field3) ExtrapolateGhosts(a Axis) {
	g := f.G
	switch a {
	case X:
		n := f.Nx
		for k := -g; k < f.Nz+g; k++ {
			for j := -g; j < f.Ny+g; j++ {
				for l := 1; l <= g; l++ {
					f.Set(-l, j, k, f.At(0, j, k))
					f.Set(n-1+l, j, k, f.At(n-1, j, k))
				}
			}
		}
	case Y:
		n := f.Ny
		for k := -g; k < f.Nz+g; k++ {
			for l := 1; l <= g; l++ {
				for i := -g; i < f.Nx+g; i++ {
					f.Set(i, -l, k, f.At(i, 0, k))
					f.Set(i, n-1+l, k, f.At(i, n-1, k))
				}
			}
		}
	case Z:
		n := f.Nz
		for l := 1; l <= g; l++ {
			for j := -g; j < f.Ny+g; j++ {
				for i := -g; i < f.Nx+g; i++ {
					f.Set(i, j, -l, f.At(i, j, 0))
					f.Set(i, j, n-1+l, f.At(i, j, n-1))
				}
			}
		}
	}
}

func (f *Field3) mustMatch(x *Field3) {
	if f.Nx != x.Nx || f.Ny != x.Ny || f.Nz != x.Nz || f.G != x.G {
		panic(fmt.Sprintf("grid: field shape mismatch %dx%dx%d/g%d vs %dx%dx%d/g%d",
			f.Nx, f.Ny, f.Nz, f.G, x.Nx, x.Ny, x.Nz, x.G))
	}
	if f.Storage() != x.Storage() {
		panic(fmt.Sprintf("grid: field storage mismatch %s vs %s", f.Storage(), x.Storage()))
	}
}
