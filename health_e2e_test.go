package s3d

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/s3dgo/s3d/internal/health"
	"github.com/s3dgo/s3d/internal/obs"
)

// liftedHealthSim builds the small reacting lifted-jet case the health
// end-to-end tests run on.
func liftedHealthSim(t *testing.T) *Simulation {
	t.Helper()
	p, err := LiftedJetProblem(LiftedJetOptions{Nx: 32, Ny: 24, Nz: 1, IgnitionKernel: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := p.NewSimulation()
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestHealthEndToEnd is the acceptance path of the run-health watchdog: a
// NaN forced mid-run becomes a structured violation naming rank, step and
// cell; /health and the Prometheus health gauges reflect the trip within
// one step; the post-mortem bundle holds the last steps of diagnostics and
// an emergency checkpoint the restart path can read.
func TestHealthEndToEnd(t *testing.T) {
	bundle := filepath.Join(t.TempDir(), "health")
	sim := liftedHealthSim(t)
	sim.EnableHealth(HealthOptions{BundleDir: bundle, EmergencyCheckpoint: true})

	var traceBuf bytes.Buffer
	probe, err := sim.StartTelemetry(TelemetryOptions{
		Case:        "health-test",
		Trace:       obs.NewTrace(&traceBuf),
		MonitorAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	dt := 0.4 * sim.StableDt()
	sim.InjectNaN(10)

	err = probe.TryAdvance(12, dt)
	if err == nil {
		t.Fatal("injected NaN did not abort the run")
	}
	v, ok := err.(*health.Violation)
	if !ok {
		t.Fatalf("TryAdvance returned %T (%v), want *health.Violation", err, err)
	}
	if v.Rank != 0 || v.Step != 10 || v.Cell != [3]int{16, 12, 0} {
		t.Fatalf("violation misattributed: %+v", v)
	}
	if sim.Step() != 10 {
		t.Fatalf("run stopped at step %d, want 10", sim.Step())
	}

	// The monitor reflects the trip immediately: /health serves the fatal
	// status document with 503, the Prometheus text carries the gauge.
	resp, err := http.Get("http://" + probe.MonitorAddr() + "/health")
	if err != nil {
		t.Fatal(err)
	}
	var st health.Status
	if derr := json.NewDecoder(resp.Body).Decode(&st); derr != nil {
		t.Fatal(derr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || st.Level != "fatal" {
		t.Fatalf("/health = %d level %q", resp.StatusCode, st.Level)
	}
	if st.Violation == nil || st.Violation.Step != 10 {
		t.Fatalf("/health violation = %+v", st.Violation)
	}
	resp, err = http.Get("http://" + probe.MonitorAddr() + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(prom), "health_status 2") {
		t.Fatalf("/metrics.prom missing tripped health_status gauge:\n%s", prom)
	}
	if ev := probe.LastStep(); ev.Health == nil || ev.Health.Level != "fatal" {
		t.Fatalf("fatal step's event health = %+v", ev.Health)
	}
	if err := probe.Close("tripped"); err != nil {
		t.Fatal(err)
	}

	// The trace carries the health lane: ok steps, then the fatal step.
	recs, err := obs.ReadTrace(bytes.NewReader(traceBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sum := obs.Summarize(recs)
	if sum.Health != "fatal" || len(sum.HealthTripped) == 0 {
		t.Fatalf("trace summary health = %q tripped %v", sum.Health, sum.HealthTripped)
	}

	// Post-mortem bundle: at least the last 8 steps of diagnostics, the
	// violation document and a readable emergency checkpoint.
	frames, err := health.ReadFlight(filepath.Join(bundle, "flight.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) < 8 {
		t.Fatalf("flight recorder kept %d frames, want >= 8", len(frames))
	}
	lastFrame := frames[len(frames)-1]
	if lastFrame.Step != 10 || lastFrame.Level != "fatal" || lastFrame.Sample.NaNCount == 0 {
		t.Fatalf("last frame = %+v", lastFrame)
	}
	if frames[0].Level != "ok" {
		t.Fatalf("oldest frame should predate the trip: %+v", frames[0])
	}
	raw, err := os.ReadFile(filepath.Join(bundle, "violation.json"))
	if err != nil {
		t.Fatal(err)
	}
	var dumped health.Status
	if err := json.Unmarshal(raw, &dumped); err != nil {
		t.Fatal(err)
	}
	if dumped.Level != "fatal" || dumped.Violation == nil || dumped.Violation.Step != 10 {
		t.Fatalf("violation.json = %+v", dumped)
	}

	ck, err := os.Open(filepath.Join(bundle, "emergency-000010.sdf"))
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	restored := liftedHealthSim(t)
	// Arm a watchdog so restoring the (NaN-carrying) state records a fault
	// instead of panicking — the same contract as a live run.
	restored.EnableHealth(HealthOptions{})
	if err := restored.LoadCheckpoint(ck); err != nil {
		t.Fatalf("emergency checkpoint not readable by the restart path: %v", err)
	}
	if restored.Step() != 10 {
		t.Fatalf("restored step = %d, want 10", restored.Step())
	}
}

// TestMonitorEndpointsWithoutHealth pins the failure-mode behaviour of the
// monitor: with no watchdog installed and profiling off, /health and
// /profile/ are clean 404s (not 500s or hangs) and the Prometheus text has
// no stale health gauges.
func TestMonitorEndpointsWithoutHealth(t *testing.T) {
	sim := liftedHealthSim(t)
	probe, err := sim.StartTelemetry(TelemetryOptions{Case: "plain", MonitorAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close("")
	probe.Advance(2, 0.4*sim.StableDt())

	for _, path := range []string{"/health", "/profile/", "/profile/trace.json"} {
		resp, err := http.Get("http://" + probe.MonitorAddr() + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
	resp, err := http.Get("http://" + probe.MonitorAddr() + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || strings.Contains(string(prom), "health_status") {
		t.Fatalf("/metrics.prom = %d, must not export health gauges without a watchdog:\n%s",
			resp.StatusCode, prom)
	}
	if ev := probe.LastStep(); ev.Health != nil {
		t.Fatalf("step events must omit health when no watchdog: %+v", ev.Health)
	}
}
