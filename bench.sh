#!/bin/sh
# bench.sh — run the root benchmark suite (one benchmark per paper table /
# figure plus the watchdog overhead gate, see bench_test.go) and record the
# numbers as results/BENCH_<n>.json via cmd/benchsnap. `make bench` runs
# this.
#
#   BENCHTIME  go test -benchtime value (default 1x: one pass per
#              benchmark — the custom metrics are deterministic, and the
#              wall-clock ones are honest single-shot readings)
#   BENCH      -bench regexp (default: the whole suite)
#   S3D_WORKERS  recorded into the snapshot as the worker-pool size
set -eu

cd "$(dirname "$0")"

BENCHTIME="${BENCHTIME:-1x}"
BENCH="${BENCH:-.}"
WORKERS="${S3D_WORKERS:-0}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "== go test -run xxx -bench $BENCH -benchtime $BENCHTIME -benchmem ."
go test -run xxx -bench "$BENCH" -benchtime "$BENCHTIME" -benchmem . | tee "$tmp"

go run ./cmd/benchsnap -out results -workers "$WORKERS" < "$tmp"
