package s3d

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/s3dgo/s3d/internal/obs"
)

func inertBoxSim(t *testing.T) *Simulation {
	t.Helper()
	mech := HydrogenAir()
	sim, err := New(Config{
		Mechanism:    mech,
		Grid:         GridSpec{Nx: 16, Ny: 12, Nz: 1, Lx: 0.01, Ly: 0.01, Lz: 0.01},
		Pressure:     101325,
		ChemistryOff: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	yAir := make([]float64, mech.NumSpecies())
	yAir[mech.SpeciesIndex("O2")] = 0.233
	yAir[mech.SpeciesIndex("N2")] = 0.767
	sim.SetInitial(func(x, y, z float64, s *State) {
		s.T = 300 + 200*x/0.01
		copy(s.Y, yAir)
	}, nil)
	return sim
}

func TestAdvanceInSituObserverCadence(t *testing.T) {
	sim := inertBoxSim(t)
	dt := 0.5 * sim.StableDt()
	calls := 0
	sim.AdvanceInSitu(10, dt, 3, func(s *Simulation) { calls++ })
	// Bursts: 3+3+3+1 → 4 observations.
	if calls != 4 {
		t.Fatalf("observer calls = %d, want 4", calls)
	}
	if sim.Step() != 10 {
		t.Fatalf("steps = %d, want 10", sim.Step())
	}
}

func TestInSituImagerWritesFrames(t *testing.T) {
	sim := inertBoxSim(t)
	dir := filepath.Join(t.TempDir(), "frames")
	im := &InSituImager{Dir: dir, FieldA: "T", FieldB: "p", Width: 48, Height: 36}
	obs, err := im.Observer()
	if err != nil {
		t.Fatal(err)
	}
	dt := 0.5 * sim.StableDt()
	sim.AdvanceInSitu(6, dt, 2, obs)
	if im.Frames() != 3 {
		t.Fatalf("frames = %d, want 3", im.Frames())
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 3 {
		t.Fatalf("frame files = %d (%v)", len(entries), err)
	}
	// Frames are valid PNGs with content.
	info, err := entries[0].Info()
	if err != nil || info.Size() < 100 {
		t.Fatalf("suspicious frame size: %v %v", info, err)
	}
}

func TestInSituHistogramAccumulates(t *testing.T) {
	sim := inertBoxSim(t)
	ih := &InSituHistogram{Field: "T", Bins: 16}
	dt := 0.5 * sim.StableDt()
	sim.AdvanceInSitu(4, dt, 2, ih.Observer())
	if len(ih.Snapshots) != 2 {
		t.Fatalf("snapshots = %d, want 2", len(ih.Snapshots))
	}
	var sum float64
	for _, p := range ih.Snapshots[0] {
		sum += p
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("histogram not normalised: %g", sum)
	}
}

func TestComposeObservers(t *testing.T) {
	sim := inertBoxSim(t)
	a, b := 0, 0
	obs := Compose(func(*Simulation) { a++ }, nil, func(*Simulation) { b++ })
	sim.AdvanceInSitu(2, 1e-7, 1, obs)
	if a != 2 || b != 2 {
		t.Fatalf("composed observers ran %d/%d times", a, b)
	}
}

func TestAdvanceInSituEdgeCases(t *testing.T) {
	t.Run("every greater than n", func(t *testing.T) {
		sim := inertBoxSim(t)
		dt := 0.5 * sim.StableDt()
		calls := 0
		sim.AdvanceInSitu(3, dt, 100, func(*Simulation) { calls++ })
		// One burst clipped to n → exactly one observation, at the end.
		if calls != 1 {
			t.Fatalf("observer calls = %d, want 1", calls)
		}
		if sim.Step() != 3 {
			t.Fatalf("steps = %d, want 3", sim.Step())
		}
	})
	t.Run("every non-positive", func(t *testing.T) {
		sim := inertBoxSim(t)
		dt := 0.5 * sim.StableDt()
		calls := 0
		sim.AdvanceInSitu(4, dt, 0, func(*Simulation) { calls++ })
		// every <= 0 selects one observation at the end of the run.
		if calls != 1 {
			t.Fatalf("observer calls = %d, want 1 (every<=0 observes once at the end)", calls)
		}
		if sim.Step() != 4 {
			t.Fatalf("steps = %d, want 4", sim.Step())
		}
	})
	t.Run("zero steps", func(t *testing.T) {
		sim := inertBoxSim(t)
		calls := 0
		sim.AdvanceInSitu(0, 1e-7, 2, func(*Simulation) { calls++ })
		if calls != 0 {
			t.Fatalf("observer calls = %d, want 0 for n == 0", calls)
		}
		if sim.Step() != 0 {
			t.Fatalf("steps = %d, want 0", sim.Step())
		}
	})
}

func TestComposeAllNilObservers(t *testing.T) {
	sim := inertBoxSim(t)
	obs := Compose(nil, nil, nil)
	// Must be callable without panicking.
	sim.AdvanceInSitu(2, 1e-7, 1, obs)
	if sim.Step() != 2 {
		t.Fatalf("steps = %d, want 2", sim.Step())
	}
}

func TestInSituHistogramFreezesAutoBounds(t *testing.T) {
	sim := inertBoxSim(t)
	ih := &InSituHistogram{Field: "T", Bins: 8} // Hi <= Lo → auto-range
	dt := 0.5 * sim.StableDt()
	obs := ih.Observer()
	obs(sim)
	lo0, hi0 := ih.Lo, ih.Hi
	if !(hi0 > lo0) {
		t.Fatalf("first observation must freeze bounds, got [%g, %g]", lo0, hi0)
	}
	// The state evolves between observations; the axis must not.
	sim.AdvanceInSitu(4, dt, 2, obs)
	if ih.Lo != lo0 || ih.Hi != hi0 {
		t.Fatalf("bounds drifted: [%g, %g] → [%g, %g]; snapshots are no longer comparable",
			lo0, hi0, ih.Lo, ih.Hi)
	}
	if len(ih.Snapshots) != 3 {
		t.Fatalf("snapshots = %d, want 3", len(ih.Snapshots))
	}
}

func TestInSituImagerSurfacesRenderErrors(t *testing.T) {
	sim := inertBoxSim(t)
	dir := filepath.Join(t.TempDir(), "frames")
	reg := obs.NewRegistry()
	im := &InSituImager{Dir: dir, FieldA: "T", Width: 32, Height: 24, Metrics: reg}
	observer, err := im.Observer()
	if err != nil {
		t.Fatal(err)
	}
	observer(sim)
	if im.Err() != nil {
		t.Fatalf("healthy frame reported error: %v", im.Err())
	}
	// Take the output directory away: os.Create must fail, the simulation
	// must NOT, and the failure must be counted and retained.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	observer(sim)
	observer(sim)
	if im.Err() == nil {
		t.Fatal("Err() must surface the first frame-write failure")
	}
	if got := reg.Counter("insitu.render_errors").Value(); got != 2 {
		t.Fatalf("insitu.render_errors = %d, want 2", got)
	}
}

func TestSolverFieldUnknown(t *testing.T) {
	sim := inertBoxSim(t)
	if sim.solverField("nonsense") != nil {
		t.Fatal("unknown field should be nil")
	}
	if sim.solverField("Y_ZZ") != nil {
		t.Fatal("unknown species should be nil")
	}
	if sim.solverField("Y_OH") == nil || sim.solverField("rho") == nil {
		t.Fatal("known fields missing")
	}
}
