package s3d

import (
	"os"
	"path/filepath"
	"testing"
)

func inertBoxSim(t *testing.T) *Simulation {
	t.Helper()
	mech := HydrogenAir()
	sim, err := New(Config{
		Mechanism:    mech,
		Grid:         GridSpec{Nx: 16, Ny: 12, Nz: 1, Lx: 0.01, Ly: 0.01, Lz: 0.01},
		Pressure:     101325,
		ChemistryOff: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	yAir := make([]float64, mech.NumSpecies())
	yAir[mech.SpeciesIndex("O2")] = 0.233
	yAir[mech.SpeciesIndex("N2")] = 0.767
	sim.SetInitial(func(x, y, z float64, s *State) {
		s.T = 300 + 200*x/0.01
		copy(s.Y, yAir)
	}, nil)
	return sim
}

func TestAdvanceInSituObserverCadence(t *testing.T) {
	sim := inertBoxSim(t)
	dt := 0.5 * sim.StableDt()
	calls := 0
	sim.AdvanceInSitu(10, dt, 3, func(s *Simulation) { calls++ })
	// Bursts: 3+3+3+1 → 4 observations.
	if calls != 4 {
		t.Fatalf("observer calls = %d, want 4", calls)
	}
	if sim.Step() != 10 {
		t.Fatalf("steps = %d, want 10", sim.Step())
	}
}

func TestInSituImagerWritesFrames(t *testing.T) {
	sim := inertBoxSim(t)
	dir := filepath.Join(t.TempDir(), "frames")
	im := &InSituImager{Dir: dir, FieldA: "T", FieldB: "p", Width: 48, Height: 36}
	obs, err := im.Observer()
	if err != nil {
		t.Fatal(err)
	}
	dt := 0.5 * sim.StableDt()
	sim.AdvanceInSitu(6, dt, 2, obs)
	if im.Frames() != 3 {
		t.Fatalf("frames = %d, want 3", im.Frames())
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 3 {
		t.Fatalf("frame files = %d (%v)", len(entries), err)
	}
	// Frames are valid PNGs with content.
	info, err := entries[0].Info()
	if err != nil || info.Size() < 100 {
		t.Fatalf("suspicious frame size: %v %v", info, err)
	}
}

func TestInSituHistogramAccumulates(t *testing.T) {
	sim := inertBoxSim(t)
	ih := &InSituHistogram{Field: "T", Bins: 16}
	dt := 0.5 * sim.StableDt()
	sim.AdvanceInSitu(4, dt, 2, ih.Observer())
	if len(ih.Snapshots) != 2 {
		t.Fatalf("snapshots = %d, want 2", len(ih.Snapshots))
	}
	var sum float64
	for _, p := range ih.Snapshots[0] {
		sum += p
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("histogram not normalised: %g", sum)
	}
}

func TestComposeObservers(t *testing.T) {
	sim := inertBoxSim(t)
	a, b := 0, 0
	obs := Compose(func(*Simulation) { a++ }, nil, func(*Simulation) { b++ })
	sim.AdvanceInSitu(2, 1e-7, 1, obs)
	if a != 2 || b != 2 {
		t.Fatalf("composed observers ran %d/%d times", a, b)
	}
}

func TestSolverFieldUnknown(t *testing.T) {
	sim := inertBoxSim(t)
	if sim.solverField("nonsense") != nil {
		t.Fatal("unknown field should be nil")
	}
	if sim.solverField("Y_ZZ") != nil {
		t.Fatal("unknown species should be nil")
	}
	if sim.solverField("Y_OH") == nil || sim.solverField("rho") == nil {
		t.Fatal("known fields missing")
	}
}
