# Common entry points; see README.md for the per-figure tools.

.PHONY: check test bench

# The full pre-merge gate: build, vet, race-enabled tests.
check:
	./check.sh

test:
	go test ./...

bench:
	go test -bench=. -benchmem ./...
