# Common entry points; see README.md for the per-figure tools.

.PHONY: check test bench

# The full pre-merge gate: build, vet, race-enabled tests.
check:
	./check.sh

test:
	go test ./...

# Run the root benchmark suite and append a results/BENCH_<n>.json
# snapshot (ns/op, allocs, custom paper metrics, worker count) so the perf
# trajectory is recorded per PR. BENCHTIME=5s BENCH=Health tunes the run.
bench:
	./bench.sh
