#!/bin/sh
# check.sh — the full pre-merge gate: build everything, vet everything,
# and run the test suite under the race detector. `make check` runs this.
set -eu

cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "CHECK OK"
