#!/bin/sh
# check.sh — the full pre-merge gate: build everything, vet everything,
# and run the test suite under the race detector. `make check` runs this.
set -eu

cd "$(dirname "$0")"

# Registry lint: all solver-adjacent field storage must come from the
# grid.FieldSet arena (or grid.Scratch for standalone cmd-tool buffers).
# Direct grid.NewField3* calls are allowed only inside internal/grid
# itself and in test files.
echo "== field-registry lint (no grid.NewField3 outside internal/grid and tests)"
violations=$(grep -rn 'grid\.NewField3' --include='*.go' . \
	| grep -v '^\./internal/grid/' \
	| grep -v '_test\.go:' || true)
if [ -n "$violations" ]; then
	echo "grid.NewField3 call sites outside internal/grid and tests:" >&2
	echo "$violations" >&2
	echo "register the field in a grid.FieldSet (or use grid.Scratch)" >&2
	exit 1
fi

# Precision lint: float32 narrowing is a storage-layer concern. The only
# places allowed to write a literal float32(...) conversion are the arena
# (internal/grid), the kernel backends (internal/kernels) and test files —
# everything else must go through Field3 accessors or gradView widening, so
# a demoted field can never silently truncate in compute code.
echo "== precision lint (no float32( conversions outside internal/grid, internal/kernels and tests)"
violations=$(grep -rn 'float32(' --include='*.go' . \
	| grep -v '^\./internal/grid/' \
	| grep -v '^\./internal/kernels/' \
	| grep -v '_test\.go:' || true)
if [ -n "$violations" ]; then
	echo "float32( conversions outside internal/grid, internal/kernels and tests:" >&2
	echo "$violations" >&2
	echo "route narrowing through the FieldSet arena accessors instead" >&2
	exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race -timeout 45m ./...

# Re-run the execution layer and the solver with a forced multi-worker
# default pool: on small CI machines NumCPU would otherwise select the
# single-worker inline path and the tiled kernels would never see real
# concurrency (see TestMain in internal/solver/par_test.go).
echo "== S3D_WORKERS=4 go test -race ./internal/par ./internal/solver"
S3D_WORKERS=4 go test -race -timeout 45m ./internal/par ./internal/solver

# Backend-parity gate: the blocked kernels must reproduce the generic
# trajectory bit-for-bit on the decomposed reacting case, under the race
# detector and with a real multi-worker pool (TestBlockedBackendBitwiseParity
# pins the solution hash against the seed; the mixed-policy test pins
# cross-backend and cross-worker-count agreement under float32 demotion).
echo "== S3D_WORKERS=4 go test -race -run 'TestBlockedBackendBitwiseParity|TestMixedPolicy' ./internal/solver"
S3D_WORKERS=4 go test -race -timeout 15m \
	-run 'TestBlockedBackendBitwiseParity|TestMixedPolicy' ./internal/solver

# Profiler gate: a tiny decomposed cmd/s3d run with -profile must emit a
# trace_event timeline that parses with at least one span per rank (the
# smoke test validates the artifacts), and the span API must stay within
# its overhead budget (<=1% disabled, <=5% enabled) on the RHS benchmark.
echo "== go test -race -run TestProfileSmoke ./cmd/s3d"
go test -race -timeout 10m -run TestProfileSmoke ./cmd/s3d

echo "== go test -race -run xxx -bench BenchmarkProfOverhead -benchtime 1x ."
go test -race -timeout 15m -run xxx -bench BenchmarkProfOverhead -benchtime 1x .

# Health gate: a forced mid-run NaN on a 2-rank reacting case must produce
# a structured violation with a flight-recorder bundle and a clean exit on
# every rank — no panic, no deadlocked neighbour, no leaked goroutine (the
# cross-rank abort test in internal/solver runs in the race pass above).
echo "== go test -race -run TestHealthSmoke ./cmd/s3d"
go test -race -timeout 10m -run TestHealthSmoke ./cmd/s3d

# Analysis gate: the in-situ reduction pipeline under the race detector
# (operators, pipeline, store), the determinism pin (a decomposed run's
# analysis.jsonl must be byte-identical at 1 and 4 workers), and the
# 2-rank CLI smoke test that validates the artifact end to end.
echo "== go test -race ./internal/insitu"
go test -race -timeout 10m ./internal/insitu
echo "== go test -race -run 'TestAnalysisBitwiseDeterministicAcrossWorkers|TestAnalysisLiveEndpoints' ."
go test -race -timeout 10m -run 'TestAnalysisBitwiseDeterministicAcrossWorkers|TestAnalysisLiveEndpoints' .
echo "== go test -race -run TestAnalysisSmoke ./cmd/s3d"
go test -race -timeout 10m -run TestAnalysisSmoke ./cmd/s3d

# Cost gate: the spatial cost maps and load-imbalance analytics under the
# race detector (collector, fold, LPT what-if), the determinism pin (a
# decomposed run's cost.jsonl must be byte-identical at 1 and 4 workers),
# the live-endpoint test (/cost document, cost_* gauges, /fields roles),
# and the overhead budget: <=2% with cost maps enabled at Every:1, one
# atomic load per run disabled (CPU-time paired-median gate; run without
# -race, which would distort the on/off ratio's denominator).
echo "== go test -race ./internal/cost"
go test -race -timeout 10m ./internal/cost
echo "== go test -race -run 'TestCostBitwiseDeterministicAcrossWorkers|TestCostLiveEndpoints' ."
go test -race -timeout 10m -run 'TestCostBitwiseDeterministicAcrossWorkers|TestCostLiveEndpoints' .
echo "== go test -run xxx -bench BenchmarkCostOverhead -benchtime 1x ."
go test -timeout 15m -run xxx -bench BenchmarkCostOverhead -benchtime 1x .

# Critical-path gate: the wait-state analyzer and the shared JSONL store
# under the race detector (matching, classification, backward walk, blame,
# deposit barrier, abort unblocking), the structural determinism pin (the
# record's operation census and match completeness must agree across worker
# counts), the live-endpoint test (/critpath record, critpath_* gauges),
# the race-mode CLI smoke (a 2-rank run with an injected straggler must
# blame the slowed rank end to end), and the overhead budget: <=2% armed
# at Every:1, one atomic load per step disarmed (run without -race, which
# would distort the on/off ratio's denominator).
echo "== go test -race ./internal/critpath ./internal/jsonl"
go test -race -timeout 10m ./internal/critpath ./internal/jsonl
echo "== go test -race -run 'TestCritPathStructureDeterministicAcrossWorkers|TestCritPathLiveEndpoints' ."
go test -race -timeout 10m -run 'TestCritPathStructureDeterministicAcrossWorkers|TestCritPathLiveEndpoints' .
echo "== go test -race -run TestCritPathSmoke ./cmd/s3d"
go test -race -timeout 10m -run TestCritPathSmoke ./cmd/s3d
echo "== go test -run xxx -bench BenchmarkCritPathOverhead -benchtime 1x ."
go test -timeout 15m -run xxx -bench BenchmarkCritPathOverhead -benchtime 1x .

# Load-balance gate: bitwise parity with the balancer on (weighted re-tiling
# and the cross-rank bundle path must not change a single checkpoint byte,
# at 1/2/4 workers), the 4-rank straggler smoke (chem tile imbalance must
# collapse under weighted tiling and the deterministic sharing plan must
# bring the effective rank imbalance to <=1.3x), and the overhead budget:
# <=2% with the balancer armed on a serial block (CPU-time paired-median
# gate; run without -race, which would distort the on/off ratio).
echo "== go test -race -run 'TestLoadBalanceBitwiseParity|TestLoadBalanceRequiresNothing' ."
go test -race -timeout 15m -run 'TestLoadBalanceBitwiseParity|TestLoadBalanceRequiresNothing' .
echo "== go test -race -run TestLoadBalanceSmoke ./cmd/s3d"
go test -race -timeout 10m -run TestLoadBalanceSmoke ./cmd/s3d
echo "== go test -run xxx -bench BenchmarkLBOverhead -benchtime 1x ."
go test -timeout 15m -run xxx -bench BenchmarkLBOverhead -benchtime 1x .

echo "CHECK OK"
