// Command s3dflow demonstrates the paper's §9 workflow automation: a small
// DNS runs as the "jaguar" producer, dumping restart SDF files (with .done
// sentinels), analysis files and min/max logs, while the Kepler-style
// monitoring workflow concurrently stages them to "ewok", morphs restarts,
// archives to "HPSS", ships analysis copies to "Sandia" and feeds the
// dashboard — then the run is stopped and restarted to show checkpointed
// skip/retry semantics (figure 16).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/s3dgo/s3d"
	"github.com/s3dgo/s3d/internal/sdf"
	"github.com/s3dgo/s3d/internal/workflow"
)

func main() {
	root := flag.String("root", "out_workflow", "simulated cluster root directory")
	dumps := flag.Int("dumps", 4, "restart dumps to produce")
	steps := flag.Int("steps", 20, "solver steps between dumps")
	flag.Parse()

	if err := os.RemoveAll(*root); err != nil {
		log.Fatal(err)
	}
	cluster, err := workflow.NewCluster(*root)
	if err != nil {
		log.Fatal(err)
	}

	// Start the monitoring workflow concurrently with the "simulation".
	wf, err := workflow.S3DMonitor(cluster)
	if err != nil {
		log.Fatal(err)
	}
	wfDone := make(chan error, 1)
	go func() { wfDone <- wf.Run(context.Background()) }()

	produce(cluster, *dumps, *steps)
	if err := cluster.StopAll(); err != nil {
		log.Fatal(err)
	}
	if err := <-wfDone; err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n# workflow events (provenance log)")
	for _, e := range wf.Events() {
		fmt.Println("  ", e)
	}
	fmt.Printf("\nstaged bytes: %d\n", cluster.TransferredBytes.Load())

	// Restart the workflow over the same tree: everything is checkpointed.
	wf2, err := workflow.S3DMonitor(cluster)
	if err != nil {
		log.Fatal(err)
	}
	if err := wf2.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	skips := 0
	for _, e := range wf2.Events() {
		if strings.Contains(e, "skip (checkpointed)") {
			skips++
		}
	}
	fmt.Printf("restarted workflow skipped %d checkpointed stages (fault-tolerant restart, §9)\n", skips)

	// Show the dashboard table.
	rows, err := os.ReadFile(filepath.Join(cluster.Dashboard, "minmax.csv"))
	if err == nil {
		fmt.Println("\n# dashboard min/max table (figure 17 data)")
		fmt.Print(string(rows))
	}

	// Build the figures-17/18 dashboard artefacts: per-variable min/max
	// trace plots and the jobs/status JSON, plus a user annotation.
	status, err := workflow.BuildDashboard(cluster, []workflow.Job{
		{ID: "284113", Machine: "jaguar", Name: "s3d-lifted", State: "R", Cores: 10000},
		{ID: "284114", Machine: "ewok", Name: "s3d-morph", State: "R", Cores: 16},
		{ID: "90231", Machine: "nersc", Name: "s3d-bunsen-c", State: "Q", Cores: 4480},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := workflow.Annotate(cluster, "T", "peak T rises as the kernel ignites the shear layer"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n# dashboard (figures 17-18): %d trace plots + status.json under %s\n",
		len(status.Images), cluster.Dashboard)
}

// produce runs a tiny lifted-flame DNS and dumps its files like S3D does.
func produce(c *workflow.Cluster, dumps, steps int) {
	p, err := s3d.LiftedJetProblem(s3d.LiftedJetOptions{Nx: 40, Ny: 32, Nz: 1, IgnitionKernel: true})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := p.NewSimulation()
	if err != nil {
		log.Fatal(err)
	}
	// Publish the field inventory once, up front: the registry-backed
	// /fields document, dropped next to the dashboard artefacts so the
	// page knows every field's role, halo group and checkpoint membership.
	if data, err := json.MarshalIndent(sim.FieldsDocument(), "", "  "); err == nil {
		if err := os.WriteFile(filepath.Join(c.Dashboard, "fields.json"), data, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	// In-situ science lane: the reduction pipeline streams its per-dump
	// records straight into the dashboard directory, where BuildDashboard
	// picks them up as the AnalysisLane.
	if _, err := sim.EnableAnalysis(p.StandardAnalysis()); err != nil {
		log.Fatal(err)
	}
	astore, err := s3d.NewAnalysisStore(filepath.Join(c.Dashboard, "analysis.jsonl"))
	if err != nil {
		log.Fatal(err)
	}
	defer astore.Close()
	if err := sim.Subscribe(astore.Sink()); err != nil {
		log.Fatal(err)
	}
	// Load-balance lane: the cost sampler's deterministic records land in
	// the dashboard directory too, where BuildDashboard reads them as the
	// BalanceLane.
	if _, err := sim.EnableCostMaps(s3d.CostSpec{Every: steps}); err != nil {
		log.Fatal(err)
	}
	cstore, err := s3d.NewCostStore(filepath.Join(c.Dashboard, "cost.jsonl"))
	if err != nil {
		log.Fatal(err)
	}
	defer cstore.Close()
	if err := sim.SubscribeCost(cstore.Sink()); err != nil {
		log.Fatal(err)
	}
	dt := 0.4 * sim.StableDt()
	for d := 1; d <= dumps; d++ {
		sim.Advance(steps, dt)
		step := sim.Step()

		// Restart dump: per-"rank" temperature slabs in one SDF (the real
		// code writes one file per rank; the workflow morphs N→M).
		temp, dims, err := sim.Field("T")
		if err != nil {
			log.Fatal(err)
		}
		rst := sdf.New()
		rst.Attrs["step"] = fmt.Sprint(step)
		slab := len(temp) / 4
		for r := 0; r < 4; r++ {
			name := fmt.Sprintf("T.%d", r)
			lo := r * slab
			hi := lo + slab
			if r == 3 {
				hi = len(temp)
			}
			if err := rst.AddVar(name, []int{hi - lo}, temp[lo:hi]); err != nil {
				log.Fatal(err)
			}
		}
		path := filepath.Join(c.JaguarRestart, fmt.Sprintf("restart-%04d.sdf", step))
		if err := rst.WriteFile(path); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(path+".done", nil, 0o644); err != nil {
			log.Fatal(err)
		}

		// Analysis file: temperature + OH planes.
		oh, _, _ := sim.Field("Y_OH")
		an := sdf.New()
		an.Attrs["step"] = fmt.Sprint(step)
		_ = an.AddVar("T", []int{dims[0], dims[1]}, temp)
		_ = an.AddVar("Y_OH", []int{dims[0], dims[1]}, oh)
		if err := an.WriteFile(filepath.Join(c.JaguarNetcdf, fmt.Sprintf("analysis-%04d.sdf", step))); err != nil {
			log.Fatal(err)
		}

		// ASCII min/max log.
		lo, hi, _ := sim.MinMax("T")
		line := fmt.Sprintf("%d T %.1f %.1f\n", step, lo, hi)
		if err := os.WriteFile(filepath.Join(c.JaguarMinMax, fmt.Sprintf("minmax-%d.txt", step)),
			[]byte(line), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("produced dump %d (step %d)\n", d, step)
		time.Sleep(10 * time.Millisecond) // let the watcher interleave
	}
}
