// Command weakscale regenerates the performance study of paper §3–4:
//
//	figure 1: weak-scaling cost per grid point per step on XT3, XT4 and
//	          hybrid allocations of the 50³-per-core model problem;
//	figure 2: the per-region exclusive-time breakdown of XT3 vs XT4 ranks
//	          in a hybrid execution (-breakdown);
//	figure 3: the predicted average cost when the XT3 ranks carry a reduced
//	          50×50×40 block (-balance);
//	measured: the figure-3 companion from a real run (-measured) — a small
//	          decomposed reacting lifted-jet DNS with the spatial cost
//	          sampler on, reporting each kernel's tile-cost imbalance with
//	          the greedy re-tiling what-if, and each rank's chemistry load
//	          with the rebalancing headroom (results/fig3_balance.csv).
//
// Output is a CSV-like table on stdout.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"sync"

	"github.com/s3dgo/s3d"
	"github.com/s3dgo/s3d/internal/cost"
	"github.com/s3dgo/s3d/internal/perf"
)

func main() {
	breakdown := flag.Bool("breakdown", false, "print the figure-2 region breakdown")
	balance := flag.Bool("balance", false, "print the figure-3 hybrid balance curve")
	measured := flag.Bool("measured", false, "run a small decomposed reacting DNS with cost maps and print the measured load-balance table")
	steps := flag.Int("steps", 30, "time steps for the -measured run")
	flag.Parse()

	switch {
	case *breakdown:
		printBreakdown()
	case *balance:
		printBalance()
	case *measured:
		printMeasured(*steps)
	default:
		printWeakScaling()
	}
}

func printWeakScaling() {
	cores := []int{2, 8, 64, 512, 2048, 4096, 8192, 12000, 16384, 22800}
	fmt.Println("# Figure 1: weak scaling, cost per grid point per time step (µs)")
	fmt.Println("cores,xt3,xt4,hybrid")
	xt3 := perf.WeakScaling(cores, "xt3")
	xt4 := perf.WeakScaling(cores, "xt4")
	hyb := perf.WeakScaling(cores, "hybrid")
	for i, n := range cores {
		fmt.Printf("%d,%.2f,%.2f,%.2f\n", n,
			xt3[i].CostPerGP*1e6, xt4[i].CostPerGP*1e6, hyb[i].CostPerGP*1e6)
	}
}

func printBreakdown() {
	fmt.Println("# Figure 2: exclusive time per region (s per step, 50³ per core)")
	fmt.Println("region,xt3_rank,xt4_rank")
	b3 := perf.RegionBreakdown(perf.XT3, perf.XT3, perf.S3DKernels)
	b4 := perf.RegionBreakdown(perf.XT4, perf.XT3, perf.S3DKernels)
	names := make([]string, 0, len(b3))
	for name := range b3 {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return b3[names[i]] > b3[names[j]] })
	for _, name := range names {
		fmt.Printf("%s,%.4f,%.4f\n", name, b3[name], b4[name])
	}
}

func printBalance() {
	fmt.Println("# Figure 3: predicted avg cost per grid point vs proportion of XT4 nodes (µs)")
	fmt.Println("xt4_fraction,cost_us")
	var fr []float64
	for f := 0.0; f <= 1.0001; f += 0.05 {
		fr = append(fr, f)
	}
	for _, p := range perf.HybridBalance(fr) {
		fmt.Printf("%.2f,%.2f\n", p.XT4Fraction, p.CostPerGP*1e6)
	}
	fmt.Println("# 2007 Jaguar configuration: 46% XT4 nodes")
	at := perf.HybridBalance([]float64{0.46})
	fmt.Printf("0.46,%.2f  # paper predicts 61 µs\n", at[0].CostPerGP*1e6)
}

// printMeasured is the figure-3 companion measured from a real run: a
// decomposed reacting lifted-jet DNS with the spatial cost sampler enabled
// and the dynamic load balancer on. The first deterministic record (before
// any weighted re-tiling takes effect) yields each kernel's tile-cost
// imbalance (with the greedy re-tiling what-if) and each rank's chemistry
// load; the closing dlb block compares it against the final record to show
// what cost-weighted tiling and cross-rank work-sharing recover. The
// rebalance line is the measured analogue of the figure-3 claim: how much
// the step would shrink if work were spread evenly.
func printMeasured(steps int) {
	const nx, ny = 48, 32
	dims := [3]int{2, 2, 1}
	cadence := steps / 3
	if cadence < 1 {
		cadence = 1
	}
	prob, err := s3d.LiftedJetProblem(s3d.LiftedJetOptions{
		Nx: nx, Ny: ny, Nz: 1, IgnitionKernel: true, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	var (
		mu          sync.Mutex
		first, last *s3d.CostRecord
		exported    int64
		imported    int64
	)
	err = s3d.RunDecomposed(prob.Config, dims, func(r *s3d.RankSim) {
		r.SetInitial(prob.Initial, prob.InitPressure)
		// Collective: every rank enables the identical cadence; rank 0 keeps
		// the first and final records — the ordered fold makes every rank's
		// copy bitwise identical anyway. The balancer re-plans at the same
		// cadence, so the first record is the unweighted baseline and the
		// final one reflects the re-tiled sweep.
		if _, err := r.EnableCostMaps(s3d.CostSpec{Every: cadence}); err != nil {
			panic(err)
		}
		if err := r.EnableLoadBalance(s3d.LoadBalanceSpec{Every: cadence}); err != nil {
			panic(err)
		}
		if r.Rank == 0 {
			if err := r.SubscribeCost(func(rec s3d.CostRecord) {
				mu.Lock()
				if first == nil {
					first = &rec
				}
				cp := rec
				last = &cp
				mu.Unlock()
			}); err != nil {
				panic(err)
			}
		}
		dt := 0.4 * r.StableDtGlobal()
		r.Advance(steps, dt)
		exp, imp := r.LoadBalanceStats()
		mu.Lock()
		exported += exp
		imported += imp
		mu.Unlock()
	})
	if err != nil {
		log.Fatal(err)
	}
	if first == nil || last == nil {
		log.Fatal("weakscale: the cost sampler produced no record")
	}
	fmt.Printf("# Measured load balance: lifted H2/air jet, %dx%dx1 grid, %dx%dx%d ranks, step %d\n",
		nx, ny, dims[0], dims[1], dims[2], first.Step)
	fmt.Println("# (deterministic chemistry-proxy cost maps; see README.md \"Cost maps & load balance\")")
	fmt.Println("kernel,tiles,imbalance,whatif_workers,whatif_reduction")
	for _, k := range first.Kernels {
		fmt.Printf("%s,%d,%.4f,%d,%.4f\n",
			k.Kernel, k.Tiles, k.Imbalance, k.WhatIf.Workers, k.WhatIf.Reduction)
	}
	fmt.Println("rank,chem_cost,share")
	var total float64
	for _, v := range first.RankTotals {
		total += v
	}
	for r, v := range first.RankTotals {
		share := 0.0
		if total > 0 {
			share = v / total
		}
		fmt.Printf("%d,%.0f,%.4f\n", r, v, share)
	}
	// The figure-3 analogue: the step currently waits for the most loaded
	// rank; perfect rebalancing would cut the chemistry makespan by
	// 1 − mean/max.
	maxRank := 0.0
	for _, v := range first.RankTotals {
		if v > maxRank {
			maxRank = v
		}
	}
	mean := total / float64(len(first.RankTotals))
	headroom := 0.0
	if maxRank > 0 {
		headroom = 1 - mean/maxRank
	}
	fmt.Printf("rank_imbalance,%.4f\n", first.RankImbalance)
	fmt.Printf("straggler_rank,%d\n", first.Straggler)
	fmt.Printf("rebalance_headroom,%.4f  # predicted chemistry makespan cut from even redistribution\n", headroom)

	// The dlb block: the same run had the dynamic load balancer on, so the
	// final record reflects the cost-weighted re-tiling, and the deterministic
	// sharing plan over its per-rank totals gives the effective cross-rank
	// imbalance after the work-sharing transfers land (per-rank totals stay
	// owner-attributed by design, so the raw record can't show the drop).
	preChem := chemStat(first)
	postChem := chemStat(last)
	fmt.Println("# Dynamic load balancing: chem tile imbalance before/after weighted")
	fmt.Println("# re-tiling, and effective rank imbalance after cross-rank sharing")
	fmt.Println("dlb,step,chem_tiles,chem_tile_imbalance,rank_imbalance")
	fmt.Printf("pre,%d,%d,%.4f,%.4f\n", first.Step, preChem.Tiles, preChem.Imbalance, first.RankImbalance)
	fmt.Printf("post,%d,%d,%.4f,%.4f\n", last.Step, postChem.Tiles, postChem.Imbalance, effectiveImbalance(last.RankTotals))
	fmt.Printf("dlb_cells_shared,%d  # cross-rank bundle cells exported==imported: %v\n",
		exported, exported == imported)
}

// chemStat finds the chemistry kernel's tile statistics in a record.
func chemStat(rec *s3d.CostRecord) cost.KernelStat {
	for _, k := range rec.Kernels {
		if k.Kernel == cost.ChemKernel {
			return k
		}
	}
	return cost.KernelStat{}
}

// effectiveImbalance applies the deterministic work-sharing plan the balancer
// executes to a record's per-rank chemistry totals and reports the resulting
// max/mean — the cross-rank imbalance the step actually waits on.
func effectiveImbalance(totals []float64) float64 {
	eff := append([]float64(nil), totals...)
	for _, tr := range cost.PlanSharing(totals, 0.05) {
		eff[tr.From] -= tr.Work
		eff[tr.To] += tr.Work
	}
	var sum, max float64
	for _, v := range eff {
		sum += v
		if v > max {
			max = v
		}
	}
	mean := sum / float64(len(eff))
	if mean <= 0 {
		return 1
	}
	return max / mean
}
