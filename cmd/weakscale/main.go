// Command weakscale regenerates the performance study of paper §3–4:
//
//	figure 1: weak-scaling cost per grid point per step on XT3, XT4 and
//	          hybrid allocations of the 50³-per-core model problem;
//	figure 2: the per-region exclusive-time breakdown of XT3 vs XT4 ranks
//	          in a hybrid execution (-breakdown);
//	figure 3: the predicted average cost when the XT3 ranks carry a reduced
//	          50×50×40 block (-balance);
//	measured: the figure-3 companion from a real run (-measured) — a small
//	          decomposed reacting lifted-jet DNS with the spatial cost
//	          sampler on, reporting each kernel's tile-cost imbalance with
//	          the greedy re-tiling what-if, and each rank's chemistry load
//	          with the rebalancing headroom (results/fig3_balance.csv).
//
// Output is a CSV-like table on stdout.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"sync"

	"github.com/s3dgo/s3d"
	"github.com/s3dgo/s3d/internal/perf"
)

func main() {
	breakdown := flag.Bool("breakdown", false, "print the figure-2 region breakdown")
	balance := flag.Bool("balance", false, "print the figure-3 hybrid balance curve")
	measured := flag.Bool("measured", false, "run a small decomposed reacting DNS with cost maps and print the measured load-balance table")
	steps := flag.Int("steps", 30, "time steps for the -measured run")
	flag.Parse()

	switch {
	case *breakdown:
		printBreakdown()
	case *balance:
		printBalance()
	case *measured:
		printMeasured(*steps)
	default:
		printWeakScaling()
	}
}

func printWeakScaling() {
	cores := []int{2, 8, 64, 512, 2048, 4096, 8192, 12000, 16384, 22800}
	fmt.Println("# Figure 1: weak scaling, cost per grid point per time step (µs)")
	fmt.Println("cores,xt3,xt4,hybrid")
	xt3 := perf.WeakScaling(cores, "xt3")
	xt4 := perf.WeakScaling(cores, "xt4")
	hyb := perf.WeakScaling(cores, "hybrid")
	for i, n := range cores {
		fmt.Printf("%d,%.2f,%.2f,%.2f\n", n,
			xt3[i].CostPerGP*1e6, xt4[i].CostPerGP*1e6, hyb[i].CostPerGP*1e6)
	}
}

func printBreakdown() {
	fmt.Println("# Figure 2: exclusive time per region (s per step, 50³ per core)")
	fmt.Println("region,xt3_rank,xt4_rank")
	b3 := perf.RegionBreakdown(perf.XT3, perf.XT3, perf.S3DKernels)
	b4 := perf.RegionBreakdown(perf.XT4, perf.XT3, perf.S3DKernels)
	names := make([]string, 0, len(b3))
	for name := range b3 {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return b3[names[i]] > b3[names[j]] })
	for _, name := range names {
		fmt.Printf("%s,%.4f,%.4f\n", name, b3[name], b4[name])
	}
}

func printBalance() {
	fmt.Println("# Figure 3: predicted avg cost per grid point vs proportion of XT4 nodes (µs)")
	fmt.Println("xt4_fraction,cost_us")
	var fr []float64
	for f := 0.0; f <= 1.0001; f += 0.05 {
		fr = append(fr, f)
	}
	for _, p := range perf.HybridBalance(fr) {
		fmt.Printf("%.2f,%.2f\n", p.XT4Fraction, p.CostPerGP*1e6)
	}
	fmt.Println("# 2007 Jaguar configuration: 46% XT4 nodes")
	at := perf.HybridBalance([]float64{0.46})
	fmt.Printf("0.46,%.2f  # paper predicts 61 µs\n", at[0].CostPerGP*1e6)
}

// printMeasured is the figure-3 companion measured from a real run: a
// decomposed reacting lifted-jet DNS with the spatial cost sampler enabled,
// whose final deterministic record yields each kernel's tile-cost imbalance
// (with the greedy re-tiling what-if) and each rank's chemistry load. The
// closing rebalance line is the measured analogue of the figure-3 claim:
// how much the step would shrink if work were spread evenly.
func printMeasured(steps int) {
	const nx, ny = 48, 32
	dims := [3]int{2, 2, 1}
	prob, err := s3d.LiftedJetProblem(s3d.LiftedJetOptions{
		Nx: nx, Ny: ny, Nz: 1, IgnitionKernel: true, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	var (
		mu   sync.Mutex
		last *s3d.CostRecord
	)
	err = s3d.RunDecomposed(prob.Config, dims, func(r *s3d.RankSim) {
		r.SetInitial(prob.Initial, prob.InitPressure)
		// Collective: every rank enables the identical cadence (one record,
		// at the final step); rank 0 keeps the record — the ordered fold
		// makes every rank's copy bitwise identical anyway.
		if _, err := r.EnableCostMaps(s3d.CostSpec{Every: steps}); err != nil {
			panic(err)
		}
		if r.Rank == 0 {
			if err := r.SubscribeCost(func(rec s3d.CostRecord) {
				mu.Lock()
				last = &rec
				mu.Unlock()
			}); err != nil {
				panic(err)
			}
		}
		dt := 0.4 * r.StableDtGlobal()
		r.Advance(steps, dt)
	})
	if err != nil {
		log.Fatal(err)
	}
	if last == nil {
		log.Fatal("weakscale: the cost sampler produced no record")
	}
	fmt.Printf("# Measured load balance: lifted H2/air jet, %dx%dx1 grid, %dx%dx%d ranks, step %d\n",
		nx, ny, dims[0], dims[1], dims[2], last.Step)
	fmt.Println("# (deterministic chemistry-proxy cost maps; see README.md \"Cost maps & load balance\")")
	fmt.Println("kernel,tiles,imbalance,whatif_workers,whatif_reduction")
	for _, k := range last.Kernels {
		fmt.Printf("%s,%d,%.4f,%d,%.4f\n",
			k.Kernel, k.Tiles, k.Imbalance, k.WhatIf.Workers, k.WhatIf.Reduction)
	}
	fmt.Println("rank,chem_cost,share")
	var total float64
	for _, v := range last.RankTotals {
		total += v
	}
	for r, v := range last.RankTotals {
		share := 0.0
		if total > 0 {
			share = v / total
		}
		fmt.Printf("%d,%.0f,%.4f\n", r, v, share)
	}
	// The figure-3 analogue: the step currently waits for the most loaded
	// rank; perfect rebalancing would cut the chemistry makespan by
	// 1 − mean/max.
	maxRank := 0.0
	for _, v := range last.RankTotals {
		if v > maxRank {
			maxRank = v
		}
	}
	mean := total / float64(len(last.RankTotals))
	headroom := 0.0
	if maxRank > 0 {
		headroom = 1 - mean/maxRank
	}
	fmt.Printf("rank_imbalance,%.4f\n", last.RankImbalance)
	fmt.Printf("straggler_rank,%d\n", last.Straggler)
	fmt.Printf("rebalance_headroom,%.4f  # predicted chemistry makespan cut from even redistribution\n", headroom)
}
