// Command weakscale regenerates the performance study of paper §3–4:
//
//	figure 1: weak-scaling cost per grid point per step on XT3, XT4 and
//	          hybrid allocations of the 50³-per-core model problem;
//	figure 2: the per-region exclusive-time breakdown of XT3 vs XT4 ranks
//	          in a hybrid execution (-breakdown);
//	figure 3: the predicted average cost when the XT3 ranks carry a reduced
//	          50×50×40 block (-balance).
//
// Output is a CSV-like table on stdout.
package main

import (
	"flag"
	"fmt"
	"sort"

	"github.com/s3dgo/s3d/internal/perf"
)

func main() {
	breakdown := flag.Bool("breakdown", false, "print the figure-2 region breakdown")
	balance := flag.Bool("balance", false, "print the figure-3 hybrid balance curve")
	flag.Parse()

	switch {
	case *breakdown:
		printBreakdown()
	case *balance:
		printBalance()
	default:
		printWeakScaling()
	}
}

func printWeakScaling() {
	cores := []int{2, 8, 64, 512, 2048, 4096, 8192, 12000, 16384, 22800}
	fmt.Println("# Figure 1: weak scaling, cost per grid point per time step (µs)")
	fmt.Println("cores,xt3,xt4,hybrid")
	xt3 := perf.WeakScaling(cores, "xt3")
	xt4 := perf.WeakScaling(cores, "xt4")
	hyb := perf.WeakScaling(cores, "hybrid")
	for i, n := range cores {
		fmt.Printf("%d,%.2f,%.2f,%.2f\n", n,
			xt3[i].CostPerGP*1e6, xt4[i].CostPerGP*1e6, hyb[i].CostPerGP*1e6)
	}
}

func printBreakdown() {
	fmt.Println("# Figure 2: exclusive time per region (s per step, 50³ per core)")
	fmt.Println("region,xt3_rank,xt4_rank")
	b3 := perf.RegionBreakdown(perf.XT3, perf.XT3, perf.S3DKernels)
	b4 := perf.RegionBreakdown(perf.XT4, perf.XT3, perf.S3DKernels)
	names := make([]string, 0, len(b3))
	for name := range b3 {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return b3[names[i]] > b3[names[j]] })
	for _, name := range names {
		fmt.Printf("%s,%.4f,%.4f\n", name, b3[name], b4[name])
	}
}

func printBalance() {
	fmt.Println("# Figure 3: predicted avg cost per grid point vs proportion of XT4 nodes (µs)")
	fmt.Println("xt4_fraction,cost_us")
	var fr []float64
	for f := 0.0; f <= 1.0001; f += 0.05 {
		fr = append(fr, f)
	}
	for _, p := range perf.HybridBalance(fr) {
		fmt.Printf("%.2f,%.2f\n", p.XT4Fraction, p.CostPerGP*1e6)
	}
	fmt.Println("# 2007 Jaguar configuration: 46% XT4 nodes")
	at := perf.HybridBalance([]float64{0.46})
	fmt.Printf("0.46,%.2f  # paper predicts 61 µs\n", at[0].CostPerGP*1e6)
}
