package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/s3dgo/s3d
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig1WeakScaling 	       1	      7276 ns/op	        68.75 hybrid_us/gp	        54.92 xt4_us/gp	     144 B/op	       1 allocs/op
BenchmarkHealthOverhead-8 	       1	 123456789 ns/op	         0.350 off_ms/step	         1.20 overhead_%
some test log line that must be ignored
PASS
ok  	github.com/s3dgo/s3d	0.004s
`

func TestParse(t *testing.T) {
	snap, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Goos != "linux" || snap.Goarch != "amd64" {
		t.Fatalf("header context not captured: %+v", snap)
	}
	if !strings.Contains(snap.CPU, "Xeon") {
		t.Fatalf("cpu line not captured: %q", snap.CPU)
	}
	if len(snap.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(snap.Results))
	}

	r := snap.Results[0]
	if r.Name != "BenchmarkFig1WeakScaling" || r.Iterations != 1 {
		t.Fatalf("first result mis-parsed: %+v", r)
	}
	if r.NsPerOp != 7276 || r.BytesPerOp != 144 || r.AllocsPerOp != 1 {
		t.Fatalf("standard metrics mis-parsed: %+v", r)
	}
	if r.Metrics["hybrid_us/gp"] != 68.75 || r.Metrics["xt4_us/gp"] != 54.92 {
		t.Fatalf("custom metrics mis-parsed: %+v", r.Metrics)
	}

	r = snap.Results[1]
	if r.Name != "BenchmarkHealthOverhead-8" {
		t.Fatalf("GOMAXPROCS-suffixed name mis-parsed: %q", r.Name)
	}
	if r.Metrics["overhead_%"] != 1.20 {
		t.Fatalf("health overhead metric mis-parsed: %+v", r.Metrics)
	}
}

func TestParseRejectsMalformedBenchmarkLine(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkBroken abc\n")); err == nil {
		t.Fatal("malformed iteration count accepted")
	}
	if _, err := Parse(strings.NewReader("BenchmarkBroken 1 42\n")); err == nil {
		t.Fatal("dangling value without unit accepted")
	}
}

func TestNextIndex(t *testing.T) {
	dir := t.TempDir()
	if n := NextIndex(dir); n != 1 {
		t.Fatalf("empty dir index = %d, want 1", n)
	}
	for _, name := range []string{"BENCH_1.json", "BENCH_7.json", "BENCH_3.json", "fig1_weakscale.csv"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if n := NextIndex(dir); n != 8 {
		t.Fatalf("index = %d, want 8 (one past highest)", n)
	}
}
