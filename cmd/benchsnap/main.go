// Command benchsnap turns `go test -bench` output into a versioned JSON
// snapshot, so the perf trajectory of the repo is recorded per PR instead
// of scrolling away in CI logs. It reads the benchmark text from stdin and
// writes results/BENCH_<n>.json, where n is one past the highest existing
// snapshot index:
//
//	go test -run xxx -bench . -benchmem . | go run ./cmd/benchsnap
//
// Each snapshot records per-benchmark ns/op, B/op, allocs/op and every
// custom ReportMetric value (the reproduced paper quantities), plus the
// host context (goos/goarch/cpu) and the kernel worker-pool size the run
// used. `make bench` wires this up end to end (see bench.sh).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the full BENCH_<n>.json document.
type Snapshot struct {
	Taken   string   `json:"taken"`
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	Workers int      `json:"workers"`
	Results []Result `json:"results"`
}

func main() {
	outDir := flag.String("out", "results", "directory receiving BENCH_<n>.json")
	workers := flag.Int("workers", 0, "kernel worker-pool size the run used (0: all CPUs)")
	flag.Parse()

	snap, err := Parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if len(snap.Results) == 0 {
		log.Fatal("benchsnap: no benchmark lines on stdin (pipe `go test -bench` output in)")
	}
	snap.Taken = time.Now().UTC().Format(time.RFC3339)
	snap.Workers = *workers

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(*outDir, fmt.Sprintf("BENCH_%d.json", NextIndex(*outDir)))
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchsnap: %d benchmarks -> %s\n", len(snap.Results), path)
}

var benchIndexRe = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// NextIndex returns one past the highest BENCH_<n>.json index in dir
// (1 when the directory holds none).
func NextIndex(dir string) int {
	max := 0
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 1
	}
	for _, e := range entries {
		if m := benchIndexRe.FindStringSubmatch(e.Name()); m != nil {
			if n, err := strconv.Atoi(m[1]); err == nil && n > max {
				max = n
			}
		}
	}
	return max + 1
}

// Parse reads `go test -bench` text and extracts the header context plus
// every benchmark result line. Unrecognised lines (PASS, ok, test logs)
// are skipped; a malformed Benchmark line is an error, not a silent drop.
func Parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			snap.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			snap.Results = append(snap.Results, res)
		}
	}
	return snap, sc.Err()
}

// parseLine splits one result line: name, iteration count, then
// value/unit pairs.
func parseLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, fmt.Errorf("benchsnap: short benchmark line %q", line)
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		return Result{}, fmt.Errorf("benchsnap: bad iteration count in %q: %w", line, err)
	}
	res := Result{Name: fields[0], Iterations: iters}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Result{}, fmt.Errorf("benchsnap: odd value/unit pairing in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		val, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("benchsnap: bad value %q in %q: %w", rest[i], line, err)
		}
		switch unit := rest[i+1]; unit {
		case "ns/op":
			res.NsPerOp = val
		case "B/op":
			res.BytesPerOp = val
		case "allocs/op":
			res.AllocsPerOp = val
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = val
		}
	}
	return res, nil
}
