// Command looptool regenerates the node-performance study of paper §4.1
// (figures 4 and 5): the diffusive-flux loop nest is timed in its
// naturally-written Fortran-90-array style and in its LoopTool-restructured
// form (unswitched, fused, unroll-and-jammed) on a 50³ single-rank
// pressure-wave problem, reporting the kernel speedup and the whole-RHS
// saving — measured on this machine and modelled on the Cray XD1 the paper
// used (2.94× kernel, ≈6.8% total).
package main

import (
	"flag"
	"fmt"
	"math"
	"runtime"
	"time"

	"github.com/s3dgo/s3d/internal/perf"

	"github.com/s3dgo/s3d"
)

func main() {
	n := flag.Int("n", 50, "grid points per side")
	reps := flag.Int("reps", 3, "timing repetitions (best-of)")
	flag.Parse()

	mech := s3d.HydrogenAir()
	yAir := make([]float64, mech.NumSpecies())
	yAir[mech.SpeciesIndex("O2")] = 0.233
	yAir[mech.SpeciesIndex("N2")] = 0.767

	build := func(optimized bool) *s3d.Simulation {
		sim, err := s3d.New(s3d.Config{
			Mechanism:         mech,
			Grid:              s3d.GridSpec{Nx: *n, Ny: *n, Nz: *n, Lx: 0.01, Ly: 0.01, Lz: 0.01},
			Pressure:          101325,
			ChemistryOff:      true,
			OptimizedDiffFlux: optimized,
		})
		if err != nil {
			panic(err)
		}
		// The §4.1 pressure-wave test: quiescent air with a pressure pulse.
		sim.SetInitial(func(x, y, z float64, s *s3d.State) {
			s.T = 300
			copy(s.Y, yAir)
		}, func(x, y, z float64) float64 {
			d := ((x-0.005)*(x-0.005) + (y-0.005)*(y-0.005) + (z-0.005)*(z-0.005)) / (0.002 * 0.002)
			return 101325 * (1 + 5e-3*math.Exp(-d))
		})
		return sim
	}

	// Build, warm and time one configuration at a time so the two ~250 MB
	// field sets never coexist (memory pressure would contaminate the
	// second measurement).
	measure := func(optimized bool, steps int) time.Duration {
		sim := build(optimized)
		dt := 0.5 * sim.StableDt()
		sim.Advance(1, dt) // warm-up step
		best := time.Duration(math.MaxInt64)
		for r := 0; r < *reps; r++ {
			t0 := time.Now()
			sim.Advance(steps, dt)
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		runtime.GC()
		return best
	}

	fmt.Printf("# Figures 4-5: diffusive-flux kernel restructuring, %d^3 pressure-wave test\n", *n)
	steps := 2
	tNaive := measure(false, steps)
	tOpt := measure(true, steps)

	fmt.Printf("whole-step time, naive kernel:     %v\n", tNaive)
	fmt.Printf("whole-step time, optimized kernel: %v\n", tOpt)
	saving := 1 - tOpt.Seconds()/tNaive.Seconds()
	fmt.Printf("measured whole-code saving:        %.1f%%  (paper on XD1: 6.8%% from this loop)\n", 100*saving)

	before, after, modelSaving := perf.DiffFluxModelSpeedup(perf.XD1, 2.94)
	fmt.Printf("modelled XD1 cost per grid point:  %.1f -> %.1f µs (%.1f%% saving; paper: 6.8%%)\n",
		before*1e6, after*1e6, 100*modelSaving)
	fmt.Println("# kernel-only microbenchmark: go test -bench 'Fig4' -benchmem .")
}
