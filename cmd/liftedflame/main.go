// Command liftedflame regenerates the science results of paper §6 — the
// DNS of a lifted turbulent H2/air jet flame in a vitiated (1100 K) coflow:
//
//	figure 10: a fused volume rendering of OH and HO2, showing the HO2
//	           autoignition precursor accumulating upstream of the OH flame
//	           base (written to fig10_oh_ho2.png);
//	figure 11: scatter of temperature vs mixture fraction at axial stations
//	           with conditional means and standard deviations (CSV files).
//
// The run is a scaled-down quasi-2D configuration preserving the paper's
// physical setup (see DESIGN.md); -steps and the grid flags trade fidelity
// for time.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"github.com/s3dgo/s3d"
	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/obs"
	"github.com/s3dgo/s3d/internal/prof"
	"github.com/s3dgo/s3d/internal/stats"
	"github.com/s3dgo/s3d/internal/viz"
)

func main() {
	nx := flag.Int("nx", 96, "streamwise grid points")
	ny := flag.Int("ny", 72, "transverse grid points")
	steps := flag.Int("steps", 400, "time steps")
	outDir := flag.String("out", "out_liftedflame", "output directory")
	scatter := flag.Bool("scatter", true, "write figure-11 scatter/conditional data")
	tracePath := flag.String("trace", "", "write a JSONL step trace to this file")
	monitorAddr := flag.String("monitor", "", "serve live metrics over HTTP on this address (e.g. :8080)")
	profileDir := flag.String("profile", "", "record the call-path profiler and write trace.json/callpath/roofline artifacts to this directory")
	workers := flag.Int("workers", 0, "kernel worker-pool size (0: all CPUs)")
	healthOn := flag.Bool("health", false, "arm the run-health watchdog (structured abort + flight recorder instead of a panic)")
	flightRec := flag.String("flightrec", "", "flight-recorder bundle directory (default <out>/health when -health)")
	analysisPath := flag.String("analysis", "", "enable the in-situ science-reduction pipeline and append its records (JSONL) to this file")
	analysisEvery := flag.Int("analysis-every", 1, "analysis reduction cadence in steps")
	costPath := flag.String("cost", "", "enable the spatial cost-attribution sampler and append its records (JSONL) to this file")
	costEvery := flag.Int("cost-every", 1, "cost reduction cadence in steps")
	critPath := flag.String("critpath", "", "enable the wait-state & critical-path analyzer and append its records (JSONL) to this file")
	critEvery := flag.Int("critpath-every", 1, "critical-path analysis cadence in steps")
	lbOn := flag.Bool("lb", false, "enable dynamic load balancing: cost-weighted tile planning (bitwise identical to the unbalanced run)")
	lbEvery := flag.Int("lb-every", 10, "load-balance re-plan cadence in steps")
	backend := flag.String("backend", "", "kernel backend: generic | blocked | auto | per-kernel list (bitwise interchangeable)")
	precision := flag.String("precision", "", "per-field storage policy: strict | mixed")
	flag.Parse()

	if err := s3d.SetBackend(*backend); err != nil {
		log.Fatal(err)
	}
	if err := s3d.SetPrecision(*precision); err != nil {
		log.Fatal(err)
	}
	s3d.SetWorkers(*workers)
	if *healthOn && *flightRec == "" {
		*flightRec = filepath.Join(*outDir, "health")
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	p, err := s3d.LiftedJetProblem(s3d.LiftedJetOptions{
		Nx: *nx, Ny: *ny, Nz: 1,
		IgnitionKernel: true, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := p.NewSimulation()
	if err != nil {
		log.Fatal(err)
	}
	var profiler *prof.Profiler
	if *profileDir != "" {
		profiler = s3d.NewProfiler()
		sim.EnableProfiling(profiler, "rank0")
	}
	if *healthOn {
		sim.EnableHealth(s3d.HealthOptions{BundleDir: *flightRec, EmergencyCheckpoint: true})
	}
	// Analysis before StartTelemetry, so the probe mounts /analysis and
	// the analysis_* gauges.
	if *analysisPath != "" {
		spec := p.StandardAnalysis()
		spec.Every = *analysisEvery
		if _, err := sim.EnableAnalysis(spec); err != nil {
			log.Fatal(err)
		}
		store, err := s3d.NewAnalysisStore(*analysisPath)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := store.Err(); err != nil {
				fmt.Printf("analysis store dropped records: %v\n", err)
			}
			if err := store.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote analysis records to %s\n", *analysisPath)
		}()
		if err := sim.Subscribe(store.Sink()); err != nil {
			log.Fatal(err)
		}
	}
	// The cost sampler too, so the probe mounts /cost and the cost_* gauges.
	if *costPath != "" {
		if _, err := sim.EnableCostMaps(s3d.CostSpec{Every: *costEvery}); err != nil {
			log.Fatal(err)
		}
		store, err := s3d.NewCostStore(*costPath)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := store.Err(); err != nil {
				fmt.Printf("cost store dropped records: %v\n", err)
			}
			if err := store.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote cost records to %s\n", *costPath)
		}()
		if err := sim.SubscribeCost(store.Sink()); err != nil {
			log.Fatal(err)
		}
	}
	// The load balancer re-tiles the chemistry and flux-assembly sweeps from
	// the sampler's records (installing the sampler when -cost is off).
	if *lbOn {
		if err := sim.EnableLoadBalance(s3d.LoadBalanceSpec{Every: *lbEvery}); err != nil {
			log.Fatal(err)
		}
	}
	// And the critpath analyzer, so the probe mounts /critpath and the
	// critpath_* gauges (serial run: per-step blame, no message edges).
	if *critPath != "" {
		if err := sim.EnableCritPath(s3d.NewCritPathAnalyzer(s3d.CritPathSpec{Every: *critEvery})); err != nil {
			log.Fatal(err)
		}
		store, err := s3d.NewCritPathStore(*critPath)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := store.Err(); err != nil {
				fmt.Printf("critpath store dropped records: %v\n", err)
			}
			if err := store.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote critpath records to %s\n", *critPath)
		}()
		if err := sim.SubscribeCritPath(store.Sink()); err != nil {
			log.Fatal(err)
		}
	}
	var tr *obs.Trace
	if *tracePath != "" {
		if tr, err = obs.CreateTrace(*tracePath); err != nil {
			log.Fatal(err)
		}
		defer tr.Close()
	}
	var probe *s3d.Probe
	if tr != nil || *monitorAddr != "" {
		probe, err = sim.StartTelemetry(s3d.TelemetryOptions{
			Case:        "liftedflame",
			Config:      map[string]string{"steps": fmt.Sprint(*steps)},
			Trace:       tr,
			MonitorAddr: *monitorAddr,
		})
		if err != nil {
			log.Fatal(err)
		}
		if addr := probe.MonitorAddr(); addr != "" {
			fmt.Printf("live monitor on http://%s/status\n", addr)
		}
		if profiler != nil {
			probe.MountProfile(profiler, sim.ProfileShape(), s3d.ProfileMachines())
		}
	}
	fmt.Printf("lifted H2/air jet: %dx%d grid, %d steps\n", *nx, *ny, *steps)
	chunk := *steps / 10
	if chunk == 0 {
		chunk = 1
	}
	for done := 0; done < *steps; done += chunk {
		n := chunk
		if done+n > *steps {
			n = *steps - done
		}
		// Refresh the acoustic CFL limit: the developing flame raises the
		// sound speed and the peak velocity.
		dt := 0.4 * sim.StableDt()
		var stepErr error
		switch {
		case probe != nil && *healthOn:
			stepErr = probe.TryAdvance(n, dt)
		case probe != nil:
			probe.Advance(n, dt)
		case *healthOn:
			stepErr = sim.TryAdvance(n, dt)
		default:
			sim.Advance(n, dt)
		}
		if stepErr != nil {
			fmt.Printf("health abort: %v\npost-mortem bundle in %s\n", stepErr, *flightRec)
			if probe != nil {
				if err := probe.Close(fmt.Sprintf("health abort: %v", stepErr)); err != nil {
					log.Fatal(err)
				}
			}
			return
		}
		lo, hi, _ := sim.MinMax("T")
		fmt.Printf("  step %4d  t=%.3g s  T∈[%.0f, %.0f] K\n", sim.Step(), sim.Time(), lo, hi)
	}
	if probe != nil {
		if err := probe.Close("completed"); err != nil {
			log.Fatal(err)
		}
	}
	if profiler != nil {
		if err := sim.ExportProfile(*profileDir, profiler, s3d.ProfileMachines()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote profile artifacts to %s\n", *profileDir)
	}

	if err := renderFig10(sim, *outDir); err != nil {
		log.Fatal(err)
	}
	analyzeUpstream(sim, p)
	if *scatter {
		if err := writeFig11(sim, p, *outDir); err != nil {
			log.Fatal(err)
		}
	}
}

// fieldAsGrid copies a named field into a Field3 for the renderer.
func fieldAsGrid(sim *s3d.Simulation, name string) (*grid.Field3, error) {
	data, dims, err := sim.Field(name)
	if err != nil {
		return nil, err
	}
	f := grid.Scratch("viz_scratch", dims[0], dims[1], dims[2], 0)
	idx := 0
	for k := 0; k < dims[2]; k++ {
		for j := 0; j < dims[1]; j++ {
			for i := 0; i < dims[0]; i++ {
				f.Set(i, j, k, data[idx])
				idx++
			}
		}
	}
	return f, nil
}

func renderFig10(sim *s3d.Simulation, outDir string) error {
	oh, err := fieldAsGrid(sim, "Y_OH")
	if err != nil {
		return err
	}
	ho2, err := fieldAsGrid(sim, "Y_HO2")
	if err != nil {
		return err
	}
	_, ohMax := oh.MinMax()
	_, ho2Max := ho2.MinMax()
	if ohMax == 0 {
		ohMax = 1e-9
	}
	if ho2Max == 0 {
		ho2Max = 1e-9
	}
	r := &viz.Renderer{
		Layers: []viz.Layer{
			{Field: oh, TF: viz.HotTF(0.85), Min: 0, Max: ohMax},
			{Field: ho2, TF: viz.CoolTF(0.85), Min: 0, Max: ho2Max},
		},
		Cam:   viz.Camera{Elevation: math.Pi / 2}, // view the x-y plane
		Width: 480, Height: 360,
		Background: viz.RGBA{R: 0.02, G: 0.02, B: 0.04, A: 1},
	}
	path := filepath.Join(outDir, "fig10_oh_ho2.png")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := viz.WritePNG(f, r.Render()); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

// analyzeUpstream reports the §6.3 stabilisation diagnostic: the leading
// edge of the HO2 pool must sit upstream of the OH flame base ("HO2 radical
// accumulates upstream of OH ... strong evidence that the lifted flame base
// is stabilized by autoignition").
func analyzeUpstream(sim *s3d.Simulation, p *s3d.Problem) {
	x, _, _ := sim.Coords()
	leadingEdge := func(name string) float64 {
		data, dims, err := sim.Field(name)
		if err != nil {
			log.Fatal(err)
		}
		var peak float64
		for _, v := range data {
			if v > peak {
				peak = v
			}
		}
		if peak == 0 {
			return math.NaN()
		}
		thresh := 0.2 * peak
		for i := 0; i < dims[0]; i++ {
			for k := 0; k < dims[2]; k++ {
				for j := 0; j < dims[1]; j++ {
					if data[(k*dims[1]+j)*dims[0]+i] > thresh {
						return x[i]
					}
				}
			}
		}
		return math.NaN()
	}
	xHO2 := leadingEdge("Y_HO2")
	xOH := leadingEdge("Y_OH")
	verdict := "HO2 upstream of OH ✓ (autoignition stabilisation, §6.3)"
	if !(xHO2 < xOH) {
		verdict = "HO2 NOT upstream of OH ✗"
	}
	fmt.Printf("leading edges: x(HO2) = %.4g m, x(OH) = %.4g m — %s\n", xHO2, xOH, verdict)
}

// writeFig11 writes T-vs-ξ scatter plus conditional statistics at three
// axial stations.
func writeFig11(sim *s3d.Simulation, p *s3d.Problem, outDir string) error {
	names := p.Config.Mechanism.Species()
	ns := len(names)
	fields := make([][]float64, ns)
	var dims [3]int
	for i, nm := range names {
		var err error
		fields[i], dims, err = sim.Field("Y_" + nm)
		if err != nil {
			return err
		}
	}
	temp, _, err := sim.Field("T")
	if err != nil {
		return err
	}
	bilger := sim.MixtureFraction(p.YFuel, p.YOx)
	y := make([]float64, ns)

	stations := []float64{0.25, 0.50, 0.75}
	for _, frac := range stations {
		iStation := int(frac * float64(dims[0]-1))
		sc := stats.Scatter{}
		cond := stats.NewConditional(25, 0, 1)
		for k := 0; k < dims[2]; k++ {
			for j := 0; j < dims[1]; j++ {
				idx := (k*dims[1]+j)*dims[0] + iStation
				for n := 0; n < ns; n++ {
					y[n] = fields[n][idx]
				}
				xi := bilger.Xi(y)
				sc.Add(xi, temp[idx])
				cond.Add(xi, temp[idx])
			}
		}
		path := filepath.Join(outDir, fmt.Sprintf("fig11_x%.0f.csv", frac*100))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		fmt.Fprintln(f, "# scatter: xi,T")
		for i := range sc.X {
			fmt.Fprintf(f, "%.5f,%.1f\n", sc.X[i], sc.Y[i])
		}
		fmt.Fprintln(f, "# conditional: xi,mean,std,count")
		centers, means, stds, counts := cond.Bins()
		for i := range centers {
			if counts[i] > 0 {
				fmt.Fprintf(f, "%.4f,%.1f,%.1f,%.0f\n", centers[i], means[i], stds[i], counts[i])
			}
		}
		f.Close()
		fmt.Println("wrote", path)
	}
	fmt.Printf("stoichiometric mixture fraction ξ_st = %.3f\n", bilger.XiStoich())
	return nil
}
