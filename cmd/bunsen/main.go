// Command bunsen regenerates the premixed-combustion study of paper §7 —
// the slot-burner Bunsen CH4/air flame under intense turbulence:
//
//	table 1:   the simulation parameters of cases A/B/C (laminar reference
//	           from the 1-D flame solver, turbulence scales measured from
//	           the synthetic inflow fields) (-table1);
//	figure 12: the c = 0.65 flame-surface rendering per case (-surface);
//	figure 13: conditional means of |∇c|·δ_L vs c at ¼, ½ and ¾ of the
//	           domain length, against the laminar profile (-gradc).
//
// Running with no flags produces all three on a scaled-down grid.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"strings"

	"github.com/s3dgo/s3d"
	"github.com/s3dgo/s3d/internal/chem"
	"github.com/s3dgo/s3d/internal/cost"
	"github.com/s3dgo/s3d/internal/critpath"
	"github.com/s3dgo/s3d/internal/flame1d"
	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/insitu"
	"github.com/s3dgo/s3d/internal/obs"
	"github.com/s3dgo/s3d/internal/perf"
	"github.com/s3dgo/s3d/internal/prof"
	"github.com/s3dgo/s3d/internal/stats"
	"github.com/s3dgo/s3d/internal/turb"
	"github.com/s3dgo/s3d/internal/viz"
)

// casePath inserts the case letter before the path extension:
// trace.jsonl → trace.A.jsonl.
func casePath(path string, id byte) string {
	ext := filepath.Ext(path)
	return fmt.Sprintf("%s.%c%s", strings.TrimSuffix(path, ext), id, ext)
}

func main() {
	table1 := flag.Bool("table1", false, "print table 1 only")
	surface := flag.Bool("surface", false, "render figure 12 only")
	gradc := flag.Bool("gradc", false, "write figure 13 only")
	steps := flag.Int("steps", 250, "time steps per case")
	nx := flag.Int("nx", 80, "streamwise grid points")
	ny := flag.Int("ny", 60, "transverse grid points")
	outDir := flag.String("out", "out_bunsen", "output directory")
	tracePath := flag.String("trace", "", "write per-case JSONL step traces (case letter inserted before the extension)")
	monitorAddr := flag.String("monitor", "", "serve live metrics over HTTP while a case runs (e.g. :8080)")
	profileDir := flag.String("profile", "", "record the call-path profiler per case; artifacts land in <dir>/caseA, <dir>/caseB, <dir>/caseC")
	workers := flag.Int("workers", 0, "kernel worker-pool size (0: all CPUs)")
	healthOn := flag.Bool("health", false, "arm the run-health watchdog per case (structured abort + flight recorder instead of a panic)")
	flightRec := flag.String("flightrec", "", "flight-recorder bundle root; per-case bundles land in <dir>/caseA… (default <out>/health when -health)")
	analysisPath := flag.String("analysis", "", "enable the in-situ science-reduction pipeline per case; records land in per-case JSONL files (case letter inserted before the extension)")
	analysisEvery := flag.Int("analysis-every", 1, "analysis reduction cadence in steps")
	costPath := flag.String("cost", "", "enable the spatial cost-attribution sampler per case; records land in per-case JSONL files (case letter inserted before the extension)")
	costEvery := flag.Int("cost-every", 1, "cost reduction cadence in steps")
	critPath := flag.String("critpath", "", "enable the wait-state & critical-path analyzer per case; records land in per-case JSONL files (case letter inserted before the extension)")
	critEvery := flag.Int("critpath-every", 1, "critical-path analysis cadence in steps")
	lbOn := flag.Bool("lb", false, "enable dynamic load balancing per case: cost-weighted tile planning (bitwise identical to the unbalanced run)")
	lbEvery := flag.Int("lb-every", 10, "load-balance re-plan cadence in steps")
	backend := flag.String("backend", "", "kernel backend: generic | blocked | auto | per-kernel list (bitwise interchangeable)")
	precision := flag.String("precision", "", "per-field storage policy: strict | mixed")
	flag.Parse()

	if err := s3d.SetBackend(*backend); err != nil {
		log.Fatal(err)
	}
	if err := s3d.SetPrecision(*precision); err != nil {
		log.Fatal(err)
	}
	s3d.SetWorkers(*workers)
	if *healthOn && *flightRec == "" {
		*flightRec = filepath.Join(*outDir, "health")
	}
	all := !*table1 && !*surface && !*gradc
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	lam := laminarReference()
	if *table1 || all {
		printTable1(lam)
	}
	if *surface || *gradc || all {
		runCases(lam, *steps, *nx, *ny, *outDir, *surface || all, *gradc || all, *tracePath, *monitorAddr, *profileDir, *flightRec,
			*analysisPath, *analysisEvery, *costPath, *costEvery, *critPath, *critEvery, *lbOn, *lbEvery)
	}
}

// laminarReference computes the §7.2 PREMIX numbers with the 1-D solver.
func laminarReference() flame1d.Properties {
	m := chem.CH4Skeletal()
	yu, err := flame1d.PremixedMixture(m, 0.7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("# Laminar reference flame: CH4/air, φ = 0.7, Tu = 800 K (paper §7.2)")
	p, err := flame1d.Solve(flame1d.Config{Mech: m, Tu: 800, P: 101325, Yu: yu})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  S_L  = %.2f m/s   (paper: 1.8)\n", p.SL)
	fmt.Printf("  δ_L  = %.3f mm    (paper: 0.3)\n", p.DeltaL*1e3)
	fmt.Printf("  δ_H  = %.3f mm    (paper: 0.14)\n", p.DeltaH*1e3)
	fmt.Printf("  δ_L/δ_H = %.2f    (paper: ≈2 at 800 K)\n", p.DeltaL/p.DeltaH)
	fmt.Printf("  τ_f  = %.3f ms    (paper: 0.17)\n", p.TauF*1e3)
	return p
}

// printTable1 regenerates the table-1 parameters from the laminar
// reference, in two forms: the *prescribed* values derived from the case
// design (u′/S_L and l_t/δ_L ladders with ε = u′³/l_t — the quantities the
// authors dialled in), and the values *measured* from the synthetic inflow
// fields exactly as the paper measures its DNS fields at the ¼ station.
// The synthetic spectrum carries no dissipation-range cascade, so the
// measured ε̃ (hence l_t, Ka, Da) is biased; the prescribed columns are the
// like-for-like comparison (see EXPERIMENTS.md).
func printTable1(lam flame1d.Properties) {
	nu := 8.5e-5 // kinematic viscosity at inflow conditions (table 1 footnote a)

	fmt.Println("\n# Table 1 (prescribed scales): case,h_mm,U_jet,U_coflow,uprime_SL,lt_dL,Re_t,Ka,Da | paper: Re_t,Ka,Da")
	for _, id := range []byte{'A', 'B', 'C'} {
		cs := s3d.BunsenCases()[id]
		uPrime := cs.UPrimeSL * lam.SL
		lt := cs.LtDeltaL * lam.DeltaL
		eps := uPrime * uPrime * uPrime / lt
		etaK := math.Pow(nu*nu*nu/eps, 0.25)
		ka := turb.Karlovitz(lam.DeltaL, etaK)
		da := turb.Damkohler(lam.SL, lt, uPrime, lam.DeltaL)
		// Integral scale l33 ≈ 2·l_t for these spectra (table 1 shows
		// l33/δL ≈ 2–4); use the case ratio for Re_t.
		l33 := 2 * lt * (cs.LtDeltaL / 0.7)
		ret := uPrime * l33 / nu
		fmt.Printf("%s,%.1f,%.0f,%.0f,%.1f,%.2f,%.0f,%.0f,%.2f | %.0f,%.0f,%.2f\n",
			cs.Name, cs.SlotWidth*1e3, cs.UJet, cs.UCoflow,
			cs.UPrimeSL, cs.LtDeltaL, ret, ka, da,
			cs.PaperReT, cs.PaperKa, cs.PaperDa)
	}

	fmt.Println("\n# Table 1 (measured from synthetic inflow fields): case,uprime_SL,lt_dL,l33_dL,Re_t,Ka,Da")
	for _, id := range []byte{'A', 'B', 'C'} {
		cs := s3d.BunsenCases()[id]
		uPrime := cs.UPrimeSL * lam.SL
		lt := cs.LtDeltaL * lam.DeltaL
		field := turb.NewField(turb.Spectrum{Urms: uPrime, L0: lt * 4}, 200, int64(id))
		g := grid.New(grid.Spec{Nx: 32, Ny: 32, Nz: 32, Lx: 8 * lt, Ly: 8 * lt, Lz: 8 * lt})
		u := grid.Scratch("turb_u", g.Nx, g.Ny, g.Nz, grid.Ghost)
		v := grid.Scratch("turb_v", g.Nx, g.Ny, g.Nz, grid.Ghost)
		w := grid.Scratch("turb_w", g.Nx, g.Ny, g.Nz, grid.Ghost)
		fill := func(dst *grid.Field3, comp int) {
			dst.Map(func(i, j, k int, _ float64) float64 {
				uu, vv, ww := field.At(g.Xc[i], g.Yc[j], g.Zc[k])
				return [3]float64{uu, vv, ww}[comp]
			})
		}
		fill(u, 0)
		fill(v, 1)
		fill(w, 2)
		h := 8 * lt / 31
		st := turb.Measure(u, v, w, h, h, h, nu)
		ka := turb.Karlovitz(lam.DeltaL, st.EtaK)
		da := turb.Damkohler(lam.SL, st.Lt, st.Urms, lam.DeltaL)
		fmt.Printf("%s,%.1f,%.2f,%.2f,%.0f,%.0f,%.2f\n",
			cs.Name, st.Urms/lam.SL, st.Lt/lam.DeltaL, st.L33/lam.DeltaL, st.ReT, ka, da)
	}
}

func runCases(lam flame1d.Properties, steps, nx, ny int, outDir string, doSurface, doGradC bool, tracePath, monitorAddr, profileDir, flightRec string,
	analysisPath string, analysisEvery int, costPath string, costEvery int, critPath string, critEvery int, lbOn bool, lbEvery int) {
	var machines []perf.Machine
	if profileDir != "" {
		machines = s3d.ProfileMachines()
	}
	for _, id := range []byte{'A', 'B', 'C'} {
		p, err := s3d.BunsenProblem(s3d.BunsenOptions{
			Case: id, Nx: nx, Ny: ny, Nz: 1,
			SL: lam.SL, DeltaL: lam.DeltaL, Seed: int64(id), VelocityScale: 0.5,
		})
		if err != nil {
			log.Fatal(err)
		}
		sim, err := p.NewSimulation()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ncase %c: %dx%d, %d steps\n", id, nx, ny, steps)
		var profiler *prof.Profiler
		if profileDir != "" {
			profiler = s3d.NewProfiler()
			sim.EnableProfiling(profiler, "rank0")
		}
		if flightRec != "" {
			sim.EnableHealth(s3d.HealthOptions{
				BundleDir:           filepath.Join(flightRec, fmt.Sprintf("case%c", id)),
				EmergencyCheckpoint: true,
			})
		}
		// Analysis before StartTelemetry so the probe mounts /analysis; for
		// the premixed cases the problem streams define the progress
		// variable, so the standard set includes ⟨Y_OH|c⟩ and ∫|∇c| dV.
		var astore *insitu.Store
		if analysisPath != "" {
			spec := p.StandardAnalysis()
			spec.Every = analysisEvery
			if _, err := sim.EnableAnalysis(spec); err != nil {
				log.Fatal(err)
			}
			if astore, err = s3d.NewAnalysisStore(casePath(analysisPath, id)); err != nil {
				log.Fatal(err)
			}
			if err := sim.Subscribe(astore.Sink()); err != nil {
				log.Fatal(err)
			}
		}
		// The cost sampler too, so the probe mounts /cost per case.
		var cstore *cost.Store
		if costPath != "" {
			if _, err := sim.EnableCostMaps(s3d.CostSpec{Every: costEvery}); err != nil {
				log.Fatal(err)
			}
			if cstore, err = s3d.NewCostStore(casePath(costPath, id)); err != nil {
				log.Fatal(err)
			}
			if err := sim.SubscribeCost(cstore.Sink()); err != nil {
				log.Fatal(err)
			}
		}
		// The load balancer re-tiles the chemistry and flux-assembly sweeps
		// from the sampler's records (installing the sampler when -cost is off).
		if lbOn {
			if err := sim.EnableLoadBalance(s3d.LoadBalanceSpec{Every: lbEvery}); err != nil {
				log.Fatal(err)
			}
		}
		// And the critpath analyzer, so the probe mounts /critpath per case.
		var cpstore *critpath.Store
		if critPath != "" {
			if err := sim.EnableCritPath(s3d.NewCritPathAnalyzer(s3d.CritPathSpec{Every: critEvery})); err != nil {
				log.Fatal(err)
			}
			if cpstore, err = s3d.NewCritPathStore(casePath(critPath, id)); err != nil {
				log.Fatal(err)
			}
			if err := sim.SubscribeCritPath(cpstore.Sink()); err != nil {
				log.Fatal(err)
			}
		}
		var tr *obs.Trace
		if tracePath != "" {
			if tr, err = obs.CreateTrace(casePath(tracePath, id)); err != nil {
				log.Fatal(err)
			}
		}
		var probe *s3d.Probe
		if tr != nil || monitorAddr != "" {
			probe, err = sim.StartTelemetry(s3d.TelemetryOptions{
				Case:        fmt.Sprintf("bunsen-%c", id),
				Config:      map[string]string{"steps": fmt.Sprint(steps)},
				Trace:       tr,
				MonitorAddr: monitorAddr,
			})
			if err != nil {
				log.Fatal(err)
			}
			if addr := probe.MonitorAddr(); addr != "" {
				fmt.Printf("  live monitor on http://%s/status\n", addr)
			}
			if profiler != nil {
				probe.MountProfile(profiler, sim.ProfileShape(), machines)
			}
		}
		var stepErr error
		for done := 0; done < steps && stepErr == nil; done += 50 {
			n := 50
			if done+n > steps {
				n = steps - done
			}
			dt := 0.4 * sim.StableDt()
			switch {
			case probe != nil && flightRec != "":
				stepErr = probe.TryAdvance(n, dt)
			case probe != nil:
				probe.Advance(n, dt)
			case flightRec != "":
				stepErr = sim.TryAdvance(n, dt)
			default:
				sim.Advance(n, dt)
			}
		}
		exit := "completed"
		if stepErr != nil {
			fmt.Printf("  case %c health abort: %v\n  post-mortem bundle in %s\n",
				id, stepErr, filepath.Join(flightRec, fmt.Sprintf("case%c", id)))
			exit = fmt.Sprintf("health abort: %v", stepErr)
		}
		if probe != nil {
			if err := probe.Close(exit); err != nil {
				log.Fatal(err)
			}
		}
		if tr != nil {
			if err := tr.Close(); err != nil {
				log.Fatal(err)
			}
		}
		if astore != nil {
			if err := astore.Err(); err != nil {
				fmt.Printf("  analysis store dropped records: %v\n", err)
			}
			if err := astore.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  wrote analysis records to %s\n", casePath(analysisPath, id))
		}
		if cstore != nil {
			if err := cstore.Err(); err != nil {
				fmt.Printf("  cost store dropped records: %v\n", err)
			}
			if err := cstore.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  wrote cost records to %s\n", casePath(costPath, id))
		}
		if cpstore != nil {
			if err := cpstore.Err(); err != nil {
				fmt.Printf("  critpath store dropped records: %v\n", err)
			}
			if err := cpstore.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  wrote critpath records to %s\n", casePath(critPath, id))
		}
		if profiler != nil {
			dir := filepath.Join(profileDir, fmt.Sprintf("case%c", id))
			if err := sim.ExportProfile(dir, profiler, machines); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  wrote profile artifacts to %s\n", dir)
		}
		if stepErr != nil {
			// The post-mortem bundle is the record of an aborted case; the
			// science figures would render the corrupted state.
			continue
		}
		lo, hi, _ := sim.MinMax("T")
		fmt.Printf("  final T ∈ [%.0f, %.0f] K, t = %.3g s\n", lo, hi, sim.Time())

		c, dims := progressField(sim, p)
		if doSurface {
			if err := renderFig12(c, dims, id, outDir); err != nil {
				log.Fatal(err)
			}
		}
		if doGradC {
			if err := writeFig13(sim, c, dims, lam, id, outDir); err != nil {
				log.Fatal(err)
			}
		}
	}
}

// progressField computes c from the O2 mass fraction (§7.3: "a linear
// function of the mass fraction of O2, c = 0 in the reactants, 1 in the
// products").
func progressField(sim *s3d.Simulation, p *s3d.Problem) ([]float64, [3]int) {
	mech := p.Config.Mechanism
	iO2 := mech.SpeciesIndex("O2")
	prog := stats.Progress{YO2u: p.YFuel[iO2], YO2b: p.YOx[iO2]}
	yo2, dims, err := sim.Field("Y_O2")
	if err != nil {
		log.Fatal(err)
	}
	c := make([]float64, len(yo2))
	for i, v := range yo2 {
		c[i] = prog.C(v)
	}
	return c, dims
}

func renderFig12(c []float64, dims [3]int, id byte, outDir string) error {
	f := grid.Scratch("progress_c", dims[0], dims[1], dims[2], 0)
	idx := 0
	for k := 0; k < dims[2]; k++ {
		for j := 0; j < dims[1]; j++ {
			for i := 0; i < dims[0]; i++ {
				f.Set(i, j, k, c[idx])
				idx++
			}
		}
	}
	r := &viz.Renderer{
		Layers: []viz.Layer{
			{Field: f, TF: viz.IsoTF(0.65, 0.06, viz.RGBA{R: 0.95, G: 0.75, B: 0.2, A: 0.9}), Min: 0, Max: 1, Shade: true},
		},
		Cam:   viz.Camera{Elevation: math.Pi / 2},
		Width: 480, Height: 360,
		Background: viz.RGBA{R: 0.05, G: 0.05, B: 0.08, A: 1},
	}
	path := filepath.Join(outDir, fmt.Sprintf("fig12_case%c.png", id))
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := viz.WritePNG(out, r.Render()); err != nil {
		return err
	}
	fmt.Println("  wrote", path)
	return nil
}

// writeFig13 computes conditional means of |∇c|·δ_L against c at the ¼, ½
// and ¾ streamwise stations.
func writeFig13(sim *s3d.Simulation, c []float64, dims [3]int, lam flame1d.Properties, id byte, outDir string) error {
	x, y, _ := sim.Coords()
	nx, ny, nz := dims[0], dims[1], dims[2]
	at := func(i, j, k int) float64 { return c[(k*ny+j)*nx+i] }

	path := filepath.Join(outDir, fmt.Sprintf("fig13_case%c.csv", id))
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	fmt.Fprintln(out, "station,c,mean_gradc_dL,count")
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		i0 := int(frac * float64(nx-1))
		lo := i0 - nx/8
		hi := i0 + nx/8
		if lo < 1 {
			lo = 1
		}
		if hi > nx-1 {
			hi = nx - 1
		}
		cond := stats.NewConditional(20, 0.02, 0.98)
		for k := 0; k < nz; k++ {
			for j := 1; j < ny-1; j++ {
				for i := lo; i < hi; i++ {
					dcdx := (at(i+1, j, k) - at(i-1, j, k)) / (x[i+1] - x[i-1])
					dcdy := (at(i, j+1, k) - at(i, j-1, k)) / (y[j+1] - y[j-1])
					g := math.Sqrt(dcdx*dcdx + dcdy*dcdy)
					if g > 1e-3/lam.DeltaL { // flame-containing samples only
						cond.Add(at(i, j, k), g*lam.DeltaL)
					}
				}
			}
		}
		centers, means, _, counts := cond.Bins()
		for b := range centers {
			if counts[b] > 0 {
				fmt.Fprintf(out, "%.2f,%.3f,%.4f,%.0f\n", frac, centers[b], means[b], counts[b])
			}
		}
	}
	fmt.Println("  wrote", path)
	return nil
}
