// Command s3dviz regenerates the visualization results of paper §8 from a
// lifted-flame snapshot:
//
//	figure 14: three simultaneous two-variable renderings — mixture-fraction
//	           isosurface + HO2, isosurface + OH, and OH + HO2;
//	figure 15: the trispace interface — a parallel-coordinates view over
//	           (χ-proxy, OH, mixture fraction) with brushing near the
//	           stoichiometric surface, and time histograms of OH over the
//	           run — plus the χ–OH correlation the interface uncovers.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"github.com/s3dgo/s3d"
	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/stats"
	"github.com/s3dgo/s3d/internal/viz"
)

func main() {
	nx := flag.Int("nx", 96, "streamwise grid points")
	ny := flag.Int("ny", 72, "transverse grid points")
	steps := flag.Int("steps", 240, "time steps")
	snaps := flag.Int("snapshots", 8, "time histogram snapshots")
	outDir := flag.String("out", "out_viz", "output directory")
	flag.Parse()
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	p, err := s3d.LiftedJetProblem(s3d.LiftedJetOptions{
		Nx: *nx, Ny: *ny, Nz: 1, IgnitionKernel: true, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := p.NewSimulation()
	if err != nil {
		log.Fatal(err)
	}
	// Advance in bursts, recording OH histograms per snapshot (the time
	// dimension of figure 15). The stable step is refreshed per burst: the
	// developing flame raises the sound speed and peak velocities.
	hist := make([][]float64, 0, *snaps)
	per := *steps / *snaps
	if per == 0 {
		per = 1
	}
	for s := 0; s < *snaps; s++ {
		dt := 0.4 * sim.StableDt()
		sim.Advance(per, dt)
		oh, _, err := sim.Field("Y_OH")
		if err != nil {
			log.Fatal(err)
		}
		_, ohMax, _ := sim.MinMax("Y_OH")
		h := stats.NewHistogram(24, 0, math.Max(ohMax, 1e-9))
		for _, v := range oh {
			h.Add(v)
		}
		hist = append(hist, h.Normalized())
	}
	fmt.Printf("snapshot series complete: t = %.3g s\n", sim.Time())

	if err := renderFig14(sim, p, *outDir); err != nil {
		log.Fatal(err)
	}
	if err := renderFig15(sim, p, hist, *outDir); err != nil {
		log.Fatal(err)
	}
}

func toField(data []float64, dims [3]int) *grid.Field3 {
	f := grid.Scratch("viz_scratch", dims[0], dims[1], dims[2], 0)
	idx := 0
	for k := 0; k < dims[2]; k++ {
		for j := 0; j < dims[1]; j++ {
			for i := 0; i < dims[0]; i++ {
				f.Set(i, j, k, data[idx])
				idx++
			}
		}
	}
	return f
}

// mixfracField evaluates ξ pointwise.
func mixfracField(sim *s3d.Simulation, p *s3d.Problem) (*grid.Field3, [3]int, []float64) {
	names := p.Config.Mechanism.Species()
	ns := len(names)
	fields := make([][]float64, ns)
	var dims [3]int
	for i, nm := range names {
		fields[i], dims, _ = sim.Field("Y_" + nm)
	}
	b := sim.MixtureFraction(p.YFuel, p.YOx)
	y := make([]float64, ns)
	xi := make([]float64, len(fields[0]))
	for idx := range xi {
		for n := 0; n < ns; n++ {
			y[n] = fields[n][idx]
		}
		xi[idx] = b.Xi(y)
	}
	return toField(xi, dims), dims, xi
}

func renderFig14(sim *s3d.Simulation, p *s3d.Problem, outDir string) error {
	xiF, dims, _ := mixfracField(sim, p)
	oh, _, _ := sim.Field("Y_OH")
	ho2, _, _ := sim.Field("Y_HO2")
	ohF, ho2F := toField(oh, dims), toField(ho2, dims)
	_, ohMax := ohF.MinMax()
	_, ho2Max := ho2F.MinMax()
	b := sim.MixtureFraction(p.YFuel, p.YOx)
	iso := viz.IsoTF(b.XiStoich(), 0.04, viz.RGBA{R: 0.95, G: 0.78, B: 0.25, A: 0.8})

	panels := []struct {
		name   string
		layers []viz.Layer
	}{
		{"fig14_iso_ho2.png", []viz.Layer{
			{Field: xiF, TF: iso, Min: 0, Max: 1, Shade: true},
			{Field: ho2F, TF: viz.CoolTF(0.8), Min: 0, Max: ho2Max},
		}},
		{"fig14_iso_oh.png", []viz.Layer{
			{Field: xiF, TF: iso, Min: 0, Max: 1, Shade: true},
			{Field: ohF, TF: viz.HotTF(0.8), Min: 0, Max: ohMax},
		}},
		{"fig14_oh_ho2.png", []viz.Layer{
			{Field: ohF, TF: viz.HotTF(0.8), Min: 0, Max: ohMax},
			{Field: ho2F, TF: viz.CoolTF(0.8), Min: 0, Max: ho2Max},
		}},
	}
	for _, panel := range panels {
		r := &viz.Renderer{
			Layers: panel.layers,
			Cam:    viz.Camera{Elevation: math.Pi / 2},
			Width:  420, Height: 320,
			Background: viz.RGBA{R: 0.02, G: 0.02, B: 0.05, A: 1},
		}
		path := filepath.Join(outDir, panel.name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := viz.WritePNG(f, r.Render()); err != nil {
			f.Close()
			return err
		}
		f.Close()
		fmt.Println("wrote", path)
	}
	return nil
}

func renderFig15(sim *s3d.Simulation, p *s3d.Problem, hist [][]float64, outDir string) error {
	_, dims, xi := mixfracField(sim, p)
	oh, _, _ := sim.Field("Y_OH")
	chi := scalarDissipationProxy(sim, xi, dims)

	// Parallel coordinates over (χ, OH, ξ), brushing samples near ξ_st.
	b := sim.MixtureFraction(p.YFuel, p.YOx)
	xiSt := b.XiStoich()
	var samples [][]float64
	var chiNear, ohNear []float64
	for idx := 0; idx < len(xi); idx += 7 { // decimate
		samples = append(samples, []float64{chi[idx], oh[idx], xi[idx]})
		if math.Abs(xi[idx]-xiSt) < 0.1 {
			chiNear = append(chiNear, chi[idx])
			ohNear = append(ohNear, oh[idx])
		}
	}
	pc := &viz.ParallelCoords{
		VarNames: []string{"chi", "OH", "mixfrac"},
		Samples:  samples,
		Brush:    func(s []float64) bool { return math.Abs(s[2]-xiSt) < 0.1 },
		Width:    640, Height: 400,
	}
	img, err := pc.Render()
	if err != nil {
		return err
	}
	path := filepath.Join(outDir, "fig15_parallel_coords.png")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := viz.WritePNG(f, img); err != nil {
		f.Close()
		return err
	}
	f.Close()
	fmt.Println("wrote", path)

	th := &viz.TimeHistogram{Hist: hist, Width: 512, Height: 256}
	img2, err := th.Render()
	if err != nil {
		return err
	}
	path = filepath.Join(outDir, "fig15_time_histogram.png")
	f, err = os.Create(path)
	if err != nil {
		return err
	}
	if err := viz.WritePNG(f, img2); err != nil {
		f.Close()
		return err
	}
	f.Close()
	fmt.Println("wrote", path)

	corr := stats.Correlation(chiNear, ohNear)
	fmt.Printf("χ–OH correlation near ξ_st: %.3f (figure 15 reports a negative spatial correlation)\n", corr)
	return nil
}

// scalarDissipationProxy computes χ ∝ |∇ξ|² with second-order differences.
func scalarDissipationProxy(sim *s3d.Simulation, xi []float64, dims [3]int) []float64 {
	x, y, _ := sim.Coords()
	nx, ny := dims[0], dims[1]
	at := func(i, j int) float64 { return xi[j*nx+i] }
	chi := make([]float64, len(xi))
	for j := 1; j < ny-1; j++ {
		for i := 1; i < nx-1; i++ {
			gx := (at(i+1, j) - at(i-1, j)) / (x[i+1] - x[i-1])
			gy := (at(i, j+1) - at(i, j-1)) / (y[j+1] - y[j-1])
			chi[j*nx+i] = gx*gx + gy*gy
		}
	}
	return chi
}
