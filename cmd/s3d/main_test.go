package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestProfileSmoke drives the real CLI end-to-end on a tiny decomposed
// inert box with -profile and validates the emitted artifacts: the
// trace_event JSON must parse, carry a track per rank and per pool worker,
// and show at least one complete span on every rank including the comm
// wait and figure-2 kernel regions; the call-path and roofline reports
// must render.
func TestProfileSmoke(t *testing.T) {
	dir := t.TempDir()
	profDir := filepath.Join(dir, "prof")
	os.Args = []string{"s3d",
		"-problem", "box", "-nx", "24", "-ny", "16", "-nz", "1",
		"-steps", "2", "-ranks", "2x1x1", "-workers", "2",
		"-out", filepath.Join(dir, "out"),
		"-profile", profDir,
	}
	main()

	raw, err := os.ReadFile(filepath.Join(profDir, "trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace.json does not parse: %v", err)
	}

	type track struct{ pid, tid int }
	trackName := map[track]string{}
	spansPerTrack := map[track]int{}
	regions := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		key := track{ev.Pid, ev.Tid}
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				trackName[key], _ = ev.Args["name"].(string)
			}
		case "X":
			spansPerTrack[key]++
			regions[ev.Name] = true
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}

	byName := map[string]int{}
	for key, name := range trackName {
		byName[name] = spansPerTrack[key]
	}
	for _, want := range []string{"rank0", "rank1", "worker0", "worker1"} {
		n, ok := byName[want]
		if !ok {
			t.Fatalf("trace has no %s track (tracks: %v)", want, trackName)
		}
		if n < 1 {
			t.Fatalf("track %s has no spans", want)
		}
	}
	for _, want := range []string{"STEP", "RHS", "GHOST_EXCHANGE", "MPI_WAIT", "COMPUTE_PRIMITIVES", "RK_UPDATE"} {
		if !regions[want] {
			t.Fatalf("trace missing region %q (got %v)", want, regions)
		}
	}

	callpath, err := os.ReadFile(filepath.Join(profDir, "callpath.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"RHS", "imb%", "rank0"} {
		if !strings.Contains(string(callpath), want) {
			t.Fatalf("callpath.txt missing %q:\n%s", want, callpath)
		}
	}
	if _, err := os.ReadFile(filepath.Join(profDir, "callpath.csv")); err != nil {
		t.Fatal(err)
	}
	roofline, err := os.ReadFile(filepath.Join(profDir, "roofline.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"COMPUTE_PRIMITIVES", "XT3", "host"} {
		if !strings.Contains(string(roofline), want) {
			t.Fatalf("roofline.txt missing %q:\n%s", want, roofline)
		}
	}
}
