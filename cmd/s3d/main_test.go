package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/s3dgo/s3d"
	"github.com/s3dgo/s3d/internal/cost"
	"github.com/s3dgo/s3d/internal/health"
)

// TestProfileSmoke drives the real CLI end-to-end on a tiny decomposed
// inert box with -profile and validates the emitted artifacts: the
// trace_event JSON must parse, carry a track per rank and per pool worker,
// and show at least one complete span on every rank including the comm
// wait and figure-2 kernel regions; the call-path and roofline reports
// must render.
func TestProfileSmoke(t *testing.T) {
	dir := t.TempDir()
	profDir := filepath.Join(dir, "prof")
	os.Args = []string{"s3d",
		"-problem", "box", "-nx", "24", "-ny", "16", "-nz", "1",
		"-steps", "2", "-ranks", "2x1x1", "-workers", "2",
		"-out", filepath.Join(dir, "out"),
		"-profile", profDir,
	}
	main()

	raw, err := os.ReadFile(filepath.Join(profDir, "trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace.json does not parse: %v", err)
	}

	type track struct{ pid, tid int }
	trackName := map[track]string{}
	spansPerTrack := map[track]int{}
	regions := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		key := track{ev.Pid, ev.Tid}
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				trackName[key], _ = ev.Args["name"].(string)
			}
		case "X":
			spansPerTrack[key]++
			regions[ev.Name] = true
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}

	byName := map[string]int{}
	for key, name := range trackName {
		byName[name] = spansPerTrack[key]
	}
	for _, want := range []string{"rank0", "rank1", "worker0", "worker1"} {
		n, ok := byName[want]
		if !ok {
			t.Fatalf("trace has no %s track (tracks: %v)", want, trackName)
		}
		if n < 1 {
			t.Fatalf("track %s has no spans", want)
		}
	}
	for _, want := range []string{"STEP", "RHS", "GHOST_EXCHANGE", "MPI_WAIT", "COMPUTE_PRIMITIVES", "RK_UPDATE"} {
		if !regions[want] {
			t.Fatalf("trace missing region %q (got %v)", want, regions)
		}
	}

	callpath, err := os.ReadFile(filepath.Join(profDir, "callpath.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"RHS", "imb%", "rank0"} {
		if !strings.Contains(string(callpath), want) {
			t.Fatalf("callpath.txt missing %q:\n%s", want, callpath)
		}
	}
	if _, err := os.ReadFile(filepath.Join(profDir, "callpath.csv")); err != nil {
		t.Fatal(err)
	}
	roofline, err := os.ReadFile(filepath.Join(profDir, "roofline.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"COMPUTE_PRIMITIVES", "XT3", "host"} {
		if !strings.Contains(string(roofline), want) {
			t.Fatalf("roofline.txt missing %q:\n%s", want, roofline)
		}
	}
}

// TestHealthSmoke drives the real CLI on a 2-rank reacting lifted-jet case
// with the NaN-injection test hook and validates the structured abort: main
// must return (not panic), every rank must leave a parseable flight.jsonl
// in its bundle subdirectory, and the injected rank's violation.json must
// name a real check plus carry the emergency checkpoint alongside.
//
// The NaN lands on the last rank (rank 1 here); on these narrow 16-wide
// slabs the contamination crosses the halo within the trip step, so both
// ranks may report a local fault — the test does not assume rank 0 sees a
// "remote" violation, only that both terminate cleanly with bundles.
func TestHealthSmoke(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out")
	os.Args = []string{"s3d",
		"-problem", "liftedjet", "-nx", "32", "-ny", "24", "-nz", "1",
		"-steps", "8", "-ranks", "2x1x1", "-workers", "2",
		"-out", out,
		"-inject-nan", "3",
	}
	main() // a panic here means the watchdog failed to absorb the fault

	bundle := filepath.Join(out, "health")
	for _, rank := range []string{"rank0", "rank1"} {
		frames, err := health.ReadFlight(filepath.Join(bundle, rank, "flight.jsonl"))
		if err != nil {
			t.Fatalf("%s flight recorder: %v", rank, err)
		}
		if len(frames) == 0 {
			t.Fatalf("%s flight recorder is empty", rank)
		}
		for i := 1; i < len(frames); i++ {
			if frames[i].Step != frames[i-1].Step+1 {
				t.Fatalf("%s flight frames not consecutive: step %d follows %d",
					rank, frames[i].Step, frames[i-1].Step)
			}
		}
	}

	// The injected rank's post-mortem names the trip.
	raw, err := os.ReadFile(filepath.Join(bundle, "rank1", "violation.json"))
	if err != nil {
		t.Fatal(err)
	}
	var st health.Status
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("violation.json does not parse: %v", err)
	}
	if st.Level != "fatal" {
		t.Fatalf("rank1 status level = %q, want fatal", st.Level)
	}
	if st.Violation == nil {
		t.Fatal("rank1 violation.json has no violation record")
	}
	if st.Violation.Check == "" || st.Violation.Check == "remote" {
		t.Fatalf("rank1 violation check = %q, want a local physics check", st.Violation.Check)
	}
	if st.Violation.Rank != 1 {
		t.Fatalf("rank1 violation rank = %d, want 1", st.Violation.Rank)
	}
	if st.Violation.Step < 3 {
		t.Fatalf("violation step = %d, want ≥ 3 (injection step)", st.Violation.Step)
	}

	matches, err := filepath.Glob(filepath.Join(bundle, "rank1", "emergency-*.sdf"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no emergency checkpoint written in rank1 bundle")
	}
	if fi, err := os.Stat(matches[0]); err != nil || fi.Size() == 0 {
		t.Fatalf("emergency checkpoint unreadable or empty: %v", err)
	}
}

// TestCritPathSmoke drives the real CLI on a 2-rank reacting lifted jet
// with the wait-state analyzer armed and the last rank's chemistry slowed
// via -straggle, then validates the artifacts: critpath.jsonl must show the
// critical path running through the slowed rank with the other rank in
// late-sender waits, and the Chrome-trace overlay must be written. The
// straggle is large (25 ms × 6 stages per step) so it dominates real
// compute even on a single-CPU box where the rank goroutines time-slice.
func TestCritPathSmoke(t *testing.T) {
	dir := t.TempDir()
	cpath := filepath.Join(dir, "critpath.jsonl")
	os.Args = []string{"s3d",
		"-problem", "liftedjet", "-nx", "32", "-ny", "24", "-nz", "1",
		"-steps", "4", "-ranks", "2x1x1", "-workers", "1",
		"-out", filepath.Join(dir, "out"),
		"-critpath", cpath, "-critpath-every", "2",
		"-straggle", "25ms",
	}
	main()

	recs, err := s3d.ReadCritPath(cpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 { // steps 2 and 4 at cadence 2
		t.Fatalf("got %d critpath records, want 2", len(recs))
	}
	for i, want := range []int{2, 4} {
		rec := recs[i]
		if rec.Step != want || rec.Ranks != 2 {
			t.Fatalf("record %d: step %d ranks %d, want step %d on 2 ranks", i, rec.Step, rec.Ranks, want)
		}
		if rec.CritRank != 1 { // -straggle slows the last rank
			t.Fatalf("record %d: critical path through rank %d, want 1\n%s", i, rec.CritRank, rec.Verdict)
		}
		if rec.DominantWait != "late_sender" {
			t.Fatalf("record %d: dominant wait %q, want late_sender", i, rec.DominantWait)
		}
		if rec.MatchCompleteness != 1 {
			t.Fatalf("record %d: match completeness %v, want 1", i, rec.MatchCompleteness)
		}
		if !strings.Contains(rec.Verdict, "rank 1") {
			t.Fatalf("record %d verdict does not name the straggler: %q", i, rec.Verdict)
		}
	}

	overlay, err := os.ReadFile(filepath.Join(dir, "critpath_trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"critical-path", "crit:rank1"} {
		if !strings.Contains(string(overlay), want) {
			t.Fatalf("critpath_trace.json missing %q", want)
		}
	}
}

// TestAnalysisSmoke drives the real CLI on a 2-rank decomposed inert box
// with the in-situ reduction pipeline enabled and validates the artifact:
// analysis.jsonl must load, respect the cadence, and carry finite science
// products on every record.
func TestAnalysisSmoke(t *testing.T) {
	dir := t.TempDir()
	apath := filepath.Join(dir, "analysis.jsonl")
	os.Args = []string{"s3d",
		"-problem", "box", "-nx", "24", "-ny", "16", "-nz", "1",
		"-steps", "4", "-ranks", "2x1x1", "-workers", "2",
		"-out", filepath.Join(dir, "out"),
		"-analysis", apath, "-analysis-every", "2",
	}
	main()

	recs, err := s3d.ReadAnalysis(apath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 { // steps 2 and 4 at cadence 2
		t.Fatalf("got %d analysis records, want 2", len(recs))
	}
	for i, want := range []int{2, 4} {
		rec := recs[i]
		if rec.Step != want || rec.Time <= 0 {
			t.Fatalf("record %d: step %d time %g, want step %d", i, rec.Step, rec.Time, want)
		}
		if len(rec.Products) == 0 {
			t.Fatalf("record %d has no products", i)
		}
		seen := map[string]bool{}
		for _, pr := range rec.Products {
			seen[pr.Name] = true
			for k, v := range pr.Scalars {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("record %d %s.%s is not finite", i, pr.Name, k)
				}
			}
		}
		// The inert box's standard spec: Favre temperature moments and the
		// temperature histogram at minimum.
		for _, want := range []string{"T_favre", "T"} {
			if !seen[want] {
				t.Fatalf("record %d missing product %q (have %v)", i, want, seen)
			}
		}
	}
}

// TestLoadBalanceSmoke drives the real CLI on a 4-rank igniting lifted jet
// with a straggler and dynamic load balancing, and validates the effect in
// the deterministic cost stream. The §6.2 downstream ignition kernel makes
// the chemistry genuinely lopsided on a 4x1x1 decomposition: the first
// record captures the unbalanced one-plane tiles; once the balancer has
// re-tiled from that record the chemistry tile imbalance must collapse.
// RankTotals stay owner-attributed (they measure where the cost lives, not
// who computed it — the balancer's feedback must not self-correct), so the
// cross-rank effect is checked through the deterministic sharing plan every
// rank derives from the record: post-transfer effective totals must land
// within the balancer's slack of uniform.
func TestLoadBalanceSmoke(t *testing.T) {
	dir := t.TempDir()
	cpath := filepath.Join(dir, "cost.jsonl")
	os.Args = []string{"s3d",
		"-problem", "liftedjet", "-nx", "48", "-ny", "24", "-nz", "1",
		"-steps", "4", "-ranks", "4x1x1", "-workers", "2",
		"-out", filepath.Join(dir, "out"),
		"-cost", cpath, "-cost-every", "2",
		"-lb", "-lb-every", "2",
		"-straggle", "10ms",
	}
	main()

	recs, err := s3d.ReadCost(cpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 { // steps 2 and 4 at cadence 2
		t.Fatalf("got %d cost records, want 2", len(recs))
	}
	chemImb := func(rec s3d.CostRecord) float64 {
		for _, ks := range rec.Kernels {
			if ks.Kernel == "REACTION_RATE_BOUNDS" {
				return ks.Imbalance
			}
		}
		t.Fatalf("record %d has no chemistry kernel", rec.Step)
		return 0
	}
	// Tile-level: the weighted re-tiling installed from record 1 must show
	// up in record 2 as a collapsed per-tile spread.
	before, after := chemImb(recs[0]), chemImb(recs[1])
	if before < 1.5 {
		t.Fatalf("unbalanced chemistry tile imbalance = %.3g, want the ignition kernel to make it > 1.5", before)
	}
	if after >= 0.5*before {
		t.Fatalf("re-tiling did not collapse tile imbalance: %.3g -> %.3g", before, after)
	}
	// Rank-level: the raw decomposition is badly imbalanced, and the
	// deterministic sharing plan (what every rank executes) must bring the
	// effective per-rank work within 1.3x of the mean.
	last := recs[1]
	if last.RankImbalance < 1.5 {
		t.Fatalf("raw rank imbalance = %.3g, want > 1.5 on the igniting 4-rank jet", last.RankImbalance)
	}
	eff := append([]float64(nil), last.RankTotals...)
	transfers := cost.PlanSharing(last.RankTotals, 0.05) // the installed default slack
	if len(transfers) == 0 {
		t.Fatal("sharing plan is empty on an imbalanced record")
	}
	for _, tr := range transfers {
		eff[tr.From] -= tr.Work
		eff[tr.To] += tr.Work
	}
	var max, sum float64
	for _, v := range eff {
		sum += v
		if v > max {
			max = v
		}
	}
	effImb := max / (sum / float64(len(eff)))
	if effImb > 1.3 {
		t.Fatalf("post-transfer effective rank imbalance = %.3g, want <= 1.3 (raw %.3g)", effImb, last.RankImbalance)
	}
}
