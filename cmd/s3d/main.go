// Command s3d is the general DNS driver: it runs one of the built-in
// problems (liftedjet, bunsen-a/b/c, or a periodic inert box) for a number
// of steps, optionally over a multi-rank domain decomposition, periodically
// reporting min/max monitoring quantities and writing SDF checkpoints.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"github.com/s3dgo/s3d"
	"github.com/s3dgo/s3d/internal/sdf"
)

func main() {
	problem := flag.String("problem", "liftedjet", "liftedjet | bunsen-a | bunsen-b | bunsen-c | box")
	nx := flag.Int("nx", 72, "streamwise grid points")
	ny := flag.Int("ny", 54, "transverse grid points")
	nz := flag.Int("nz", 1, "spanwise grid points")
	steps := flag.Int("steps", 100, "time steps")
	ranks := flag.String("ranks", "", "decomposition as PXxPYxPZ (empty = serial)")
	ckptEvery := flag.Int("checkpoint", 0, "write an SDF checkpoint every N steps (0: off)")
	resume := flag.String("resume", "", "restart file to resume from (bit-exact continuation)")
	outDir := flag.String("out", "out_s3d", "output directory")
	flag.Parse()

	prob := buildProblem(*problem, *nx, *ny, *nz)
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	if *ranks != "" {
		runDecomposed(prob, *ranks, *steps)
		return
	}
	sim, err := prob.NewSimulation()
	if err != nil {
		log.Fatal(err)
	}
	if *resume != "" {
		in, err := os.Open(*resume)
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.LoadCheckpoint(in); err != nil {
			log.Fatal(err)
		}
		in.Close()
		fmt.Printf("resumed from %s at step %d, t = %.4g s\n", *resume, sim.Step(), sim.Time())
	}
	dt := 0.4 * sim.StableDt()
	fmt.Printf("problem=%s grid=%dx%dx%d dt=%.3g\n", *problem, *nx, *ny, *nz, dt)
	report := *steps / 10
	if report == 0 {
		report = 1
	}
	for sim.Step() < *steps {
		n := report
		if sim.Step()+n > *steps {
			n = *steps - sim.Step()
		}
		sim.Advance(n, dt)
		tlo, thi, _ := sim.MinMax("T")
		plo, phi, _ := sim.MinMax("p")
		fmt.Printf("step %5d t=%.4g  T=[%.0f,%.0f]  p=[%.0f,%.0f]\n",
			sim.Step(), sim.Time(), tlo, thi, plo, phi)
		if *ckptEvery > 0 && sim.Step()%*ckptEvery == 0 {
			if err := writeCheckpoint(sim, *outDir); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := writeCheckpoint(sim, *outDir); err != nil {
		log.Fatal(err)
	}
}

func buildProblem(name string, nx, ny, nz int) *s3d.Problem {
	switch {
	case name == "liftedjet":
		p, err := s3d.LiftedJetProblem(s3d.LiftedJetOptions{Nx: nx, Ny: ny, Nz: nz, IgnitionKernel: true})
		if err != nil {
			log.Fatal(err)
		}
		return p
	case strings.HasPrefix(name, "bunsen-"):
		id := byte(strings.ToUpper(strings.TrimPrefix(name, "bunsen-"))[0])
		p, err := s3d.BunsenProblem(s3d.BunsenOptions{Case: id, Nx: nx, Ny: ny, Nz: nz, VelocityScale: 0.5})
		if err != nil {
			log.Fatal(err)
		}
		return p
	case name == "box":
		mech := s3d.HydrogenAir()
		yAir := make([]float64, mech.NumSpecies())
		yAir[mech.SpeciesIndex("O2")] = 0.233
		yAir[mech.SpeciesIndex("N2")] = 0.767
		cfg := s3d.Config{
			Mechanism:    mech,
			Grid:         s3d.GridSpec{Nx: nx, Ny: ny, Nz: nz, Lx: 0.01, Ly: 0.01, Lz: 0.01},
			Pressure:     101325,
			ChemistryOff: true,
			FilterEvery:  10,
		}
		return &s3d.Problem{
			Config: cfg,
			Initial: func(x, y, z float64, s *s3d.State) {
				s.T = 300
				copy(s.Y, yAir)
			},
		}
	default:
		log.Fatalf("unknown problem %q", name)
		return nil
	}
}

func runDecomposed(prob *s3d.Problem, ranks string, steps int) {
	var dims [3]int
	if n, err := fmt.Sscanf(strings.ToLower(ranks), "%dx%dx%d", &dims[0], &dims[1], &dims[2]); n != 3 || err != nil {
		log.Fatalf("bad -ranks %q (want e.g. 2x2x1)", ranks)
	}
	fmt.Printf("decomposed run on %v ranks\n", dims)
	err := s3d.RunDecomposed(prob.Config, dims, func(r *s3d.RankSim) {
		r.SetInitial(prob.Initial, prob.InitPressure)
		dt := 0.4 * r.StableDt()
		r.Advance(steps, dt)
		lo, hi, _ := r.MinMax("T")
		fmt.Printf("rank %d offset %v: T=[%.0f,%.0f]\n", r.Rank, r.Offset, lo, hi)
	})
	if err != nil {
		log.Fatal(err)
	}
}

func writeCheckpoint(sim *s3d.Simulation, outDir string) error {
	// A true restart file (full conserved state, bit-exact resume)...
	rst := filepath.Join(outDir, fmt.Sprintf("restart-%06d.sdf", sim.Step()))
	out, err := os.Create(rst)
	if err != nil {
		return err
	}
	if err := sim.SaveCheckpoint(out); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	// ...plus an analysis file with the derived fields the workflow plots.
	f := sdf.New()
	f.Attrs["step"] = fmt.Sprint(sim.Step())
	f.Attrs["time"] = fmt.Sprint(sim.Time())
	for _, name := range []string{"rho", "u", "v", "w", "T", "p"} {
		data, dims, err := sim.Field(name)
		if err != nil {
			return err
		}
		if err := f.AddVar(name, dims[:], data); err != nil {
			return err
		}
	}
	path := filepath.Join(outDir, fmt.Sprintf("analysis-%06d.sdf", sim.Step()))
	if err := f.WriteFile(path); err != nil {
		return err
	}
	fmt.Println("wrote", rst, "and", path)
	return nil
}
