// Command s3d is the general DNS driver: it runs one of the built-in
// problems (liftedjet, bunsen-a/b/c, or a periodic inert box) for a number
// of steps, optionally over a multi-rank domain decomposition, periodically
// reporting min/max monitoring quantities and writing SDF checkpoints.
//
// Observability (see README.md "Observability"): -trace writes one JSONL
// record per solver step, -monitor serves the live metrics over HTTP,
// -perf-report prints the figure-2-style per-region timer breakdown
// (rank-aggregated via Snapshot/Merge in decomposed runs), and -profile
// records the call-path profiler and writes its artifacts — a Chrome
// trace_event timeline, the inclusive/exclusive call-path report and the
// measured-vs-modelled roofline table — into the given directory.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"github.com/s3dgo/s3d"
	"github.com/s3dgo/s3d/internal/comm"
	"github.com/s3dgo/s3d/internal/cost"
	"github.com/s3dgo/s3d/internal/critpath"
	"github.com/s3dgo/s3d/internal/insitu"
	"github.com/s3dgo/s3d/internal/obs"
	"github.com/s3dgo/s3d/internal/pario"
	"github.com/s3dgo/s3d/internal/perf"
	"github.com/s3dgo/s3d/internal/prof"
	"github.com/s3dgo/s3d/internal/sdf"
)

func main() {
	// Tests drive main() more than once in-process; a fresh FlagSet keeps
	// the registrations from colliding.
	flag.CommandLine = flag.NewFlagSet(os.Args[0], flag.ExitOnError)
	problem := flag.String("problem", "liftedjet", "liftedjet | bunsen-a | bunsen-b | bunsen-c | box")
	nx := flag.Int("nx", 72, "streamwise grid points")
	ny := flag.Int("ny", 54, "transverse grid points")
	nz := flag.Int("nz", 1, "spanwise grid points")
	steps := flag.Int("steps", 100, "time steps")
	ranks := flag.String("ranks", "", "decomposition as PXxPYxPZ (empty = serial)")
	ckptEvery := flag.Int("checkpoint", 0, "write an SDF checkpoint every N steps (0: off)")
	resume := flag.String("resume", "", "restart file to resume from (bit-exact continuation)")
	outDir := flag.String("out", "out_s3d", "output directory")
	tracePath := flag.String("trace", "", "write a JSONL step trace to this file")
	monitorAddr := flag.String("monitor", "", "serve live metrics over HTTP on this address (e.g. :8080)")
	perfReport := flag.Bool("perf-report", false, "print the per-region timer breakdown at exit")
	profileDir := flag.String("profile", "", "record the call-path profiler and write trace.json/callpath/roofline artifacts to this directory")
	workers := flag.Int("workers", 0, "kernel worker-pool size, shared across in-process ranks (0: all CPUs)")
	healthOn := flag.Bool("health", false, "arm the run-health watchdog: physics invariants per step, structured abort with a post-mortem bundle instead of a panic")
	flightRec := flag.String("flightrec", "", "flight-recorder bundle directory (default <out>/health when -health)")
	injectNaN := flag.Int("inject-nan", 0, "plant a NaN in the conserved energy at the start of step N (watchdog test hook; implies -health)")
	analysisPath := flag.String("analysis", "", "enable the in-situ science-reduction pipeline and append its records (JSONL) to this file")
	analysisEvery := flag.Int("analysis-every", 1, "analysis reduction cadence in steps")
	costPath := flag.String("cost", "", "enable the spatial cost-attribution sampler and append its records (JSONL) to this file")
	costEvery := flag.Int("cost-every", 1, "cost reduction cadence in steps")
	critPath := flag.String("critpath", "", "enable the cross-rank wait-state & critical-path analyzer and append its records (JSONL) to this file; a Chrome-trace overlay lands next to it as critpath_trace.json")
	critEvery := flag.Int("critpath-every", 1, "critical-path analysis cadence in steps")
	straggle := flag.Duration("straggle", 0, "slow one rank's chemistry by this much per RK stage (the highest rank in decomposed runs; critpath/cost validation hook)")
	lbOn := flag.Bool("lb", false, "enable dynamic load balancing: cost-weighted tile planning plus cross-rank chemistry work-sharing in decomposed runs (bitwise identical to the unbalanced run)")
	lbEvery := flag.Int("lb-every", 10, "load-balance re-plan cadence in steps")
	backend := flag.String("backend", "", "kernel backend: generic | blocked | auto | per-kernel list (e.g. rk_update=blocked,diff=generic); bitwise interchangeable")
	precision := flag.String("precision", "", "per-field storage policy: strict (all float64) | mixed (float32 gradients/transport, float64 compute)")
	flag.Parse()

	if *injectNaN > 0 {
		*healthOn = true
	}
	if *healthOn && *flightRec == "" {
		*flightRec = filepath.Join(*outDir, "health")
	}
	if err := s3d.SetBackend(*backend); err != nil {
		log.Fatal(err)
	}
	if err := s3d.SetPrecision(*precision); err != nil {
		log.Fatal(err)
	}
	s3d.SetWorkers(*workers)
	prob := buildProblem(*problem, *nx, *ny, *nz)
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	var tr *obs.Trace
	if *tracePath != "" {
		var err error
		if tr, err = obs.CreateTrace(*tracePath); err != nil {
			log.Fatal(err)
		}
		defer tr.Close()
	}
	telemetryOn := tr != nil || *monitorAddr != "" || *perfReport

	if *ranks != "" {
		runDecomposed(prob, *ranks, *steps, tr, *monitorAddr, *perfReport, *profileDir,
			*healthOn, *flightRec, *injectNaN, *analysisPath, *analysisEvery, *costPath, *costEvery,
			*critPath, *critEvery, *straggle, *lbOn, *lbEvery)
		return
	}
	sim, err := prob.NewSimulation()
	if err != nil {
		log.Fatal(err)
	}
	var profiler *prof.Profiler
	if *profileDir != "" {
		profiler = s3d.NewProfiler()
		sim.EnableProfiling(profiler, "rank0")
	}
	// Before StartTelemetry, so the probe mounts /health and the gauges.
	if *healthOn {
		sim.EnableHealth(s3d.HealthOptions{BundleDir: *flightRec, EmergencyCheckpoint: true})
		if *injectNaN > 0 {
			sim.InjectNaN(*injectNaN)
		}
	}
	// Likewise the analysis pipeline: enabled before StartTelemetry so the
	// probe mounts /analysis and the analysis_* gauges.
	if *analysisPath != "" {
		store := enableAnalysis(sim, prob, *analysisPath, *analysisEvery)
		defer closeAnalysisStore(store, *analysisPath)
	}
	// And the cost sampler: enabled before StartTelemetry so the probe
	// mounts /cost and the cost_* gauges.
	if *costPath != "" {
		store := enableCost(sim, *costPath, *costEvery)
		defer closeCostStore(store, *costPath)
	}
	// The load balancer folds the sampler's records into weight profiles
	// (installing the sampler itself when -cost is off); balanced runs stay
	// bitwise identical to unbalanced ones.
	if *lbOn {
		if err := sim.EnableLoadBalance(s3d.LoadBalanceSpec{Every: *lbEvery}); err != nil {
			log.Fatal(err)
		}
	}
	// And the critpath analyzer, same ordering rule; serial runs still get
	// per-step blame (no message edges, but the step window and regions).
	if *critPath != "" {
		critA := s3d.NewCritPathAnalyzer(s3d.CritPathSpec{Every: *critEvery})
		store := enableCritPath(sim, critA, *critPath)
		defer closeCritPathStore(store, *critPath)
		defer writeCritPathOverlay(sim.WriteCritPathTrace, *critPath)
	}
	if *straggle > 0 {
		sim.InjectStraggler(*straggle)
	}
	if *resume != "" {
		in, err := os.Open(*resume)
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.LoadCheckpoint(in); err != nil {
			log.Fatal(err)
		}
		in.Close()
		fmt.Printf("resumed from %s at step %d, t = %.4g s\n", *resume, sim.Step(), sim.Time())
	}
	// Checkpoint bytes are routed through the §5.1 caching layer when
	// telemetry is on, so the trace carries genuine pario counters.
	ckpt := &checkpointer{outDir: *outDir, throughPario: telemetryOn || profiler != nil}
	if profiler != nil {
		// Checkpoint I/O runs on the goroutine driving the simulation, so
		// its PARIO_* spans ride on the rank's own track.
		ckpt.ptrack = sim.ProfTrack()
	}
	var probe *s3d.Probe
	if telemetryOn {
		if probe, err = sim.StartTelemetry(s3d.TelemetryOptions{
			Case:        *problem,
			Config:      map[string]string{"steps": fmt.Sprint(*steps)},
			Trace:       tr,
			MonitorAddr: *monitorAddr,
			Pario:       ckpt.stats,
		}); err != nil {
			log.Fatal(err)
		}
		if addr := probe.MonitorAddr(); addr != "" {
			fmt.Printf("live monitor on http://%s/status\n", addr)
		}
		if profiler != nil {
			probe.MountProfile(profiler, sim.ProfileShape(), s3d.ProfileMachines())
		}
	}
	dt := 0.4 * sim.StableDt()
	fmt.Printf("problem=%s grid=%dx%dx%d dt=%.3g\n", *problem, *nx, *ny, *nz, dt)
	report := *steps / 10
	if report == 0 {
		report = 1
	}
	advance := func(n int) error {
		switch {
		case probe != nil && *healthOn:
			return probe.TryAdvance(n, dt)
		case probe != nil:
			probe.Advance(n, dt)
		case *healthOn:
			return sim.TryAdvance(n, dt)
		default:
			sim.Advance(n, dt)
		}
		return nil
	}
	for sim.Step() < *steps {
		n := report
		if sim.Step()+n > *steps {
			n = *steps - sim.Step()
		}
		if err := advance(n); err != nil {
			fmt.Printf("health abort: %v\n", err)
			fmt.Printf("post-mortem bundle in %s\n", *flightRec)
			if probe != nil {
				if cerr := probe.Close(fmt.Sprintf("health abort: %v", err)); cerr != nil {
					log.Fatal(cerr)
				}
			}
			return
		}
		tlo, thi, _ := sim.MinMax("T")
		plo, phi, _ := sim.MinMax("p")
		fmt.Printf("step %5d t=%.4g  T=[%.0f,%.0f]  p=[%.0f,%.0f]\n",
			sim.Step(), sim.Time(), tlo, thi, plo, phi)
		if *ckptEvery > 0 && sim.Step()%*ckptEvery == 0 {
			writeAndRecord(ckpt, sim, probe)
		}
	}
	writeAndRecord(ckpt, sim, probe)
	if probe != nil {
		if err := probe.Close("completed"); err != nil {
			log.Fatal(err)
		}
	}
	if *perfReport {
		fmt.Printf("\nper-region timer breakdown (figure-2 style):\n%s", sim.PerfTimers().Report())
		if s3d.Workers() > 1 {
			fmt.Printf("\nworker-pool busy time per kernel (%d workers):\n%s",
				s3d.Workers(), sim.PoolPerfTimers().Report())
		}
	}
	if profiler != nil {
		if err := sim.ExportProfile(*profileDir, profiler, s3d.ProfileMachines()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote profile artifacts to %s (trace.json, callpath.txt, callpath.csv, roofline.txt)\n", *profileDir)
	}
}

// enableAnalysis turns on the problem's standard science-reduction set and
// streams every record into a JSONL store at path.
func enableAnalysis(sim *s3d.Simulation, prob *s3d.Problem, path string, every int) *insitu.Store {
	spec := prob.StandardAnalysis()
	spec.Every = every
	if _, err := sim.EnableAnalysis(spec); err != nil {
		log.Fatal(err)
	}
	store, err := s3d.NewAnalysisStore(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.Subscribe(store.Sink()); err != nil {
		log.Fatal(err)
	}
	return store
}

// closeAnalysisStore flushes the store and reports any dropped appends.
func closeAnalysisStore(store *insitu.Store, path string) {
	if err := store.Err(); err != nil {
		fmt.Printf("analysis store %s dropped records: %v\n", path, err)
	}
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote analysis records to %s\n", path)
}

// enableCost turns on the spatial cost-attribution sampler and streams
// every deterministic record into a JSONL store at path.
func enableCost(sim *s3d.Simulation, path string, every int) *cost.Store {
	if _, err := sim.EnableCostMaps(s3d.CostSpec{Every: every}); err != nil {
		log.Fatal(err)
	}
	store, err := s3d.NewCostStore(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.SubscribeCost(store.Sink()); err != nil {
		log.Fatal(err)
	}
	return store
}

// closeCostStore flushes the store and reports any dropped appends.
func closeCostStore(store *cost.Store, path string) {
	if err := store.Err(); err != nil {
		fmt.Printf("cost store %s dropped records: %v\n", path, err)
	}
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote cost records to %s\n", path)
}

// enableCritPath installs the shared wait-state analyzer on sim and streams
// every analyzed record into a JSONL store at path.
func enableCritPath(sim *s3d.Simulation, a *s3d.CritPathAnalyzer, path string) *critpath.Store {
	if err := sim.EnableCritPath(a); err != nil {
		log.Fatal(err)
	}
	store, err := s3d.NewCritPathStore(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.SubscribeCritPath(store.Sink()); err != nil {
		log.Fatal(err)
	}
	return store
}

// closeCritPathStore flushes the store and reports any dropped appends.
func closeCritPathStore(store *critpath.Store, path string) {
	if err := store.Err(); err != nil {
		fmt.Printf("critpath store %s dropped records: %v\n", path, err)
	}
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote critpath records to %s\n", path)
}

// writeCritPathOverlay exports the Chrome-trace timeline with the
// critical-path overlay lane next to the JSONL store.
func writeCritPathOverlay(write func(io.Writer) error, jsonlPath string) {
	out := filepath.Join(filepath.Dir(jsonlPath), "critpath_trace.json")
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote critical-path Chrome trace to %s\n", out)
}

func writeAndRecord(ckpt *checkpointer, sim *s3d.Simulation, probe *s3d.Probe) {
	paths, err := ckpt.write(sim)
	if err != nil {
		log.Fatal(err)
	}
	if probe != nil {
		for _, p := range paths {
			probe.Checkpoint(p)
		}
	}
}

func buildProblem(name string, nx, ny, nz int) *s3d.Problem {
	switch {
	case name == "liftedjet":
		p, err := s3d.LiftedJetProblem(s3d.LiftedJetOptions{Nx: nx, Ny: ny, Nz: nz, IgnitionKernel: true})
		if err != nil {
			log.Fatal(err)
		}
		return p
	case strings.HasPrefix(name, "bunsen-"):
		id := byte(strings.ToUpper(strings.TrimPrefix(name, "bunsen-"))[0])
		p, err := s3d.BunsenProblem(s3d.BunsenOptions{Case: id, Nx: nx, Ny: ny, Nz: nz, VelocityScale: 0.5})
		if err != nil {
			log.Fatal(err)
		}
		return p
	case name == "box":
		mech := s3d.HydrogenAir()
		yAir := make([]float64, mech.NumSpecies())
		yAir[mech.SpeciesIndex("O2")] = 0.233
		yAir[mech.SpeciesIndex("N2")] = 0.767
		cfg := s3d.Config{
			Mechanism:    mech,
			Grid:         s3d.GridSpec{Nx: nx, Ny: ny, Nz: nz, Lx: 0.01, Ly: 0.01, Lz: 0.01},
			Pressure:     101325,
			ChemistryOff: true,
			FilterEvery:  10,
		}
		return &s3d.Problem{
			Config: cfg,
			Initial: func(x, y, z float64, s *s3d.State) {
				s.T = 300
				copy(s.Y, yAir)
			},
		}
	default:
		log.Fatalf("unknown problem %q", name)
		return nil
	}
}

func runDecomposed(prob *s3d.Problem, ranks string, steps int, tr *obs.Trace, monitorAddr string, perfReport bool, profileDir string,
	healthOn bool, flightRec string, injectNaN int, analysisPath string, analysisEvery int, costPath string, costEvery int,
	critPath string, critEvery int, straggle time.Duration, lbOn bool, lbEvery int) {
	var dims [3]int
	if n, err := fmt.Sscanf(strings.ToLower(ranks), "%dx%dx%d", &dims[0], &dims[1], &dims[2]); n != 3 || err != nil {
		log.Fatalf("bad -ranks %q (want e.g. 2x2x1)", ranks)
	}
	fmt.Printf("decomposed run on %v ranks\n", dims)
	telemetryOn := tr != nil || monitorAddr != ""
	var profiler *prof.Profiler
	var machines []perf.Machine
	if profileDir != "" {
		profiler = s3d.NewProfiler()
		machines = s3d.ProfileMachines()
	}
	// The critpath analyzer is shared by every rank (it is the cross-rank
	// deposit barrier), so it is created here, outside the rank closure —
	// the same pattern as the shared profiler.
	var critA *s3d.CritPathAnalyzer
	if critPath != "" {
		critA = s3d.NewCritPathAnalyzer(s3d.CritPathSpec{Every: critEvery})
	}
	// Rank 0 carries the trace and monitor; every rank contributes its
	// timer snapshot to the aggregate report and its own profiler track.
	var mu sync.Mutex
	agg := perf.NewTimers()
	var poolAgg *perf.Timers
	var shape prof.RunShape
	nRanks := dims[0] * dims[1] * dims[2]
	err := s3d.RunDecomposed(prob.Config, dims, func(r *s3d.RankSim) {
		if profiler != nil {
			r.EnableProfiling(profiler, fmt.Sprintf("rank%d", r.Rank))
			if r.Rank == 0 {
				mu.Lock()
				shape = r.ProfileShape()
				mu.Unlock()
			}
		}
		r.SetInitial(prob.Initial, prob.InitPressure)
		// Every rank must arm at the same point: the armed step loop adds
		// two collectives that have to match across ranks.
		if healthOn {
			r.EnableHealth(s3d.HealthOptions{BundleDir: flightRec, EmergencyCheckpoint: true})
			if injectNaN > 0 && r.Rank == nRanks-1 {
				r.InjectNaN(injectNaN)
			}
		}
		// Analysis too is collective: every rank enables the identical
		// spec; only rank 0 subscribes the store (records agree bitwise
		// across ranks, so one copy suffices).
		if analysisPath != "" {
			spec := prob.StandardAnalysis()
			spec.Every = analysisEvery
			if _, err := r.EnableAnalysis(spec); err != nil {
				panic(err)
			}
			if r.Rank == 0 {
				store, err := s3d.NewAnalysisStore(analysisPath)
				if err != nil {
					panic(err)
				}
				defer closeAnalysisStore(store, analysisPath)
				if err := r.Subscribe(store.Sink()); err != nil {
					panic(err)
				}
			}
		}
		// The cost sampler is collective for the same reason: every rank
		// enables the identical cadence; only rank 0 subscribes the store
		// (the ordered fold makes every rank's record bitwise identical).
		if costPath != "" {
			if _, err := r.EnableCostMaps(s3d.CostSpec{Every: costEvery}); err != nil {
				panic(err)
			}
			if r.Rank == 0 {
				store, err := s3d.NewCostStore(costPath)
				if err != nil {
					panic(err)
				}
				defer closeCostStore(store, costPath)
				if err := r.SubscribeCost(store.Sink()); err != nil {
					panic(err)
				}
			}
		}
		// The critpath analyzer is a collective too: every rank installs the
		// same instance; only rank 0 subscribes the store (the barrier
		// publishes exactly one record per analyzed step).
		if critA != nil {
			if err := r.EnableCritPath(critA); err != nil {
				panic(err)
			}
			if r.Rank == 0 {
				store, err := s3d.NewCritPathStore(critPath)
				if err != nil {
					panic(err)
				}
				defer closeCritPathStore(store, critPath)
				if err := r.SubscribeCritPath(store.Sink()); err != nil {
					panic(err)
				}
			}
		}
		// The load balancer is collective in effect — every rank folds the
		// identical record into identical plans — so every rank enables the
		// identical spec.
		if lbOn {
			if err := r.EnableLoadBalance(s3d.LoadBalanceSpec{Every: lbEvery}); err != nil {
				panic(err)
			}
		}
		// The straggler hook slows the highest rank, so the analyzer (and
		// the cost imbalance analytics) have a known culprit to find.
		if straggle > 0 && r.Rank == nRanks-1 {
			r.InjectStraggler(straggle)
		}
		dt := 0.4 * r.StableDtGlobal()
		var stepErr error
		if r.Rank == 0 && telemetryOn {
			probe, err := r.StartTelemetry(s3d.TelemetryOptions{
				Case:        "decomposed",
				Config:      map[string]string{"ranks": ranks, "steps": fmt.Sprint(steps)},
				Trace:       tr,
				MonitorAddr: monitorAddr,
				Status:      os.Stdout,
			})
			if err != nil {
				panic(err)
			}
			if profiler != nil {
				probe.MountProfile(profiler, r.ProfileShape(), machines)
			}
			exit := "completed"
			if healthOn {
				stepErr = probe.TryAdvance(steps, dt)
				if stepErr != nil {
					exit = fmt.Sprintf("health abort: %v", stepErr)
				}
			} else {
				probe.Advance(steps, dt)
			}
			if err := probe.Close(exit); err != nil {
				panic(err)
			}
		} else if healthOn {
			stepErr = r.TryAdvance(steps, dt)
		} else {
			r.Advance(steps, dt)
		}
		if stepErr != nil {
			fmt.Printf("rank %d health abort: %v\n", r.Rank, stepErr)
			return
		}
		lo, hi, _ := r.MinMax("T")
		fmt.Printf("rank %d offset %v: T=[%.0f,%.0f]\n", r.Rank, r.Offset, lo, hi)
		if lbOn {
			exp, imp := r.LoadBalanceStats()
			fmt.Printf("rank %d load balance: exported %d imported %d cells\n", r.Rank, exp, imp)
		}
		if perfReport {
			mu.Lock()
			agg.Merge(r.PerfTimers().Snapshot())
			if poolAgg == nil {
				// The pool is process-wide, so one snapshot (taken after the
				// ranks finish stepping) covers every rank's tiles.
				poolAgg = r.PoolPerfTimers()
			}
			mu.Unlock()
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	if perfReport {
		fmt.Printf("\nper-region timer breakdown aggregated over %d ranks:\n%s", nRanks, agg.Report())
		if s3d.Workers() > 1 && poolAgg != nil {
			fmt.Printf("\nworker-pool busy time per kernel (%d workers shared by %d ranks):\n%s",
				s3d.Workers(), nRanks, poolAgg.Report())
		}
	}
	if profiler != nil {
		if err := prof.Export(profileDir, profiler, shape, machines); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote profile artifacts to %s (trace.json, callpath.txt, callpath.csv, roofline.txt)\n", profileDir)
	}
	if critA != nil {
		writeCritPathOverlay(critA.WriteChromeTrace, critPath)
	}
}

// checkpointer writes restart + analysis files, optionally routing the
// bytes through the pario caching layer so runs exercise (and report on)
// the §5.1 protocol.
type checkpointer struct {
	outDir       string
	throughPario bool
	ptrack       *prof.Track // when non-nil, pario client ops record spans here

	mu    sync.Mutex
	pstat obs.ParioStats
}

// stats returns the accumulated pario counters (Probe's Pario source).
func (c *checkpointer) stats() obs.ParioStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pstat
}

func (c *checkpointer) write(sim *s3d.Simulation) ([]string, error) {
	// A true restart file (full conserved state, bit-exact resume)...
	rst := filepath.Join(c.outDir, fmt.Sprintf("restart-%06d.sdf", sim.Step()))
	var buf bytes.Buffer
	if err := sim.SaveCheckpoint(&buf); err != nil {
		return nil, err
	}
	if err := c.writeFile(rst, buf.Bytes()); err != nil {
		return nil, err
	}
	// ...plus an analysis file with the derived fields the workflow plots:
	// the registry's primitive scalars, streamed row-by-row from the field
	// arena (no per-variable copies).
	f := sdf.New()
	f.Attrs["step"] = fmt.Sprint(sim.Step())
	f.Attrs["time"] = fmt.Sprint(sim.Time())
	for _, name := range sim.AnalysisFields() {
		rows, dims, err := sim.FieldRows(name)
		if err != nil {
			return nil, err
		}
		if err := f.AddVarFunc(name, dims[:], rows); err != nil {
			return nil, err
		}
	}
	path := filepath.Join(c.outDir, fmt.Sprintf("analysis-%06d.sdf", sim.Step()))
	var abuf bytes.Buffer
	if err := f.Encode(&abuf); err != nil {
		return nil, err
	}
	if err := c.writeFile(path, abuf.Bytes()); err != nil {
		return nil, err
	}
	fmt.Println("wrote", rst, "and", path)
	return []string{rst, path}, nil
}

// writeFile lands data on disk, through the caching layer when enabled.
func (c *checkpointer) writeFile(path string, data []byte) error {
	if !c.throughPario || len(data) == 0 {
		return os.WriteFile(path, data, 0o644)
	}
	file := pario.NewSharedFile(int64(len(data)))
	var st obs.ParioStats
	err := comm.NewWorld(1).Run(func(cm *comm.Comm) {
		cl := pario.NewCacheClient(cm, file, pario.CacheConfig{PageBytes: 64 << 10})
		if c.ptrack != nil {
			cl.SetProfiler(c.ptrack)
		}
		const chunk = 8 << 10
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			if err := cl.Write(int64(off), data[off:end]); err != nil {
				panic(err)
			}
		}
		st = cl.Stats()
		cl.Close()
	})
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.pstat.CacheAccesses += st.CacheAccesses
	c.pstat.CacheMisses += st.CacheMisses
	c.pstat.CacheEvictions += st.CacheEvictions
	c.pstat.RemoteForwards += st.RemoteForwards
	c.pstat.CacheHitRate = c.pstat.HitRate()
	c.mu.Unlock()
	return os.WriteFile(path, file.Bytes(), 0o644)
}
