// Command iobench regenerates figure 9 of the paper: the S3D-I/O
// checkpoint kernel (four global arrays, block-block-block partitioned,
// ≈15.26 MB per process per checkpoint, ten checkpoints) written through
// the four paths — Fortran file-per-process I/O, native collective MPI-I/O,
// collective I/O with MPI-I/O caching and independent I/O with two-stage
// write-behind — against the Lustre-like and GPFS-like file-system models,
// reporting write bandwidth and file-open time per process count. It also
// verifies that every shared-file path produces the byte-identical
// canonical file image (figure 8) before reporting numbers.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/s3dgo/s3d/internal/pario"
)

func main() {
	checkpoints := flag.Int("checkpoints", 10, "checkpoints per run (the paper uses 10)")
	verify := flag.Bool("verify", true, "verify canonical file images before benchmarking")
	flag.Parse()

	if *verify {
		k := pario.Kernel{NxP: 6, NyP: 5, NzP: 4, Px: 2, Py: 2, Pz: 2}
		if err := k.VerifyImages(256, 128); err != nil {
			log.Fatalf("canonical image verification failed: %v", err)
		}
		fmt.Println("# canonical-order verification: all shared-file paths byte-identical ✓")
	}

	grids := []pario.Kernel{
		{NxP: 50, NyP: 50, NzP: 50, Px: 2, Py: 2, Pz: 2}, // 8
		{NxP: 50, NyP: 50, NzP: 50, Px: 4, Py: 2, Pz: 2}, // 16
		{NxP: 50, NyP: 50, NzP: 50, Px: 4, Py: 4, Pz: 2}, // 32
		{NxP: 50, NyP: 50, NzP: 50, Px: 4, Py: 4, Pz: 4}, // 64
		{NxP: 50, NyP: 50, NzP: 50, Px: 8, Py: 4, Pz: 4}, // 128
	}
	net := pario.GigE()
	methods := pario.AllMethods()

	for _, fs := range []*pario.FS{pario.Lustre(), pario.GPFS()} {
		fmt.Printf("\n# Figure 9 (%s): write bandwidth (MB/s)\n", fs.Name)
		fmt.Print("procs")
		for _, m := range methods {
			fmt.Printf(",%s", m.Name())
		}
		fmt.Println(",independent")
		for _, k := range grids {
			fmt.Printf("%d", k.NumProcs())
			for _, m := range methods {
				r := m.Simulate(k, fs, net, *checkpoints)
				fmt.Printf(",%.1f", r.BandwidthMBs)
			}
			ind := pario.NativeIndependent{}.Simulate(k, fs, net, *checkpoints)
			fmt.Printf(",%.1f\n", ind.BandwidthMBs)
		}

		fmt.Printf("\n# Figure 9 (%s): file open time over %d checkpoints (s)\n", fs.Name, *checkpoints)
		fmt.Println("procs,fortran,shared")
		for _, k := range grids {
			f := pario.FortranIO{}.Simulate(k, fs, net, *checkpoints)
			c := pario.NativeCollective{}.Simulate(k, fs, net, *checkpoints)
			fmt.Printf("%d,%.2f,%.2f\n", k.NumProcs(), f.OpenTime, c.OpenTime)
		}
	}
}
