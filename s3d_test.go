package s3d

import (
	"bytes"
	"math"
	"sync"
	"testing"
)

func TestQuickstartAPI(t *testing.T) {
	mech := HydrogenAir()
	sim, err := New(Config{
		Mechanism:    mech,
		Grid:         GridSpec{Nx: 16, Ny: 12, Nz: 1, Lx: 0.01, Ly: 0.01, Lz: 0.01},
		Pressure:     101325,
		ChemistryOff: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	yAir := make([]float64, mech.NumSpecies())
	yAir[mech.SpeciesIndex("O2")] = 0.233
	yAir[mech.SpeciesIndex("N2")] = 0.767
	sim.SetInitial(func(x, y, z float64, s *State) {
		s.U = 3 * math.Sin(2*math.Pi*x/0.01)
		s.T = 320
		copy(s.Y, yAir)
	}, nil)
	dt := sim.StableDt()
	if dt <= 0 || math.IsInf(dt, 1) {
		t.Fatalf("bad StableDt %g", dt)
	}
	sim.Advance(3, dt)
	if sim.Step() != 3 || sim.Time() <= 0 {
		t.Fatalf("step/time bookkeeping wrong: %d %g", sim.Step(), sim.Time())
	}
	temp, dims, err := sim.Field("T")
	if err != nil {
		t.Fatal(err)
	}
	if dims != [3]int{16, 12, 1} || len(temp) != 16*12 {
		t.Fatalf("field dims wrong: %v %d", dims, len(temp))
	}
	lo, hi, err := sim.MinMax("T")
	if err != nil || lo < 250 || hi > 400 {
		t.Fatalf("temperature range [%g, %g] (%v)", lo, hi, err)
	}
	if _, _, err := sim.Field("Y_O2"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sim.Field("Y_XX"); err == nil {
		t.Fatal("expected unknown species error")
	}
	if _, _, err := sim.Field("vorticity"); err == nil {
		t.Fatal("expected unknown field error")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("expected mechanism error")
	}
	if _, err := New(Config{Mechanism: HydrogenAir(),
		Grid: GridSpec{Nx: 8, Ny: 8, Nz: 1, Lx: 1, Ly: 1, Lz: 1}}); err == nil {
		t.Fatal("expected pressure error")
	}
}

func TestMechanismAPI(t *testing.T) {
	m := MethaneAirSkeletal()
	if m.NumSpecies() != 14 {
		t.Fatalf("species = %d", m.NumSpecies())
	}
	names := m.Species()
	if names[m.SpeciesIndex("CO2")] != "CO2" {
		t.Fatal("species indexing broken")
	}
	y, err := m.PremixedMixture(1.0)
	if err != nil {
		t.Fatal(err)
	}
	tb, yb, err := m.Equilibrium(300, 101325, y)
	if err != nil {
		t.Fatal(err)
	}
	if tb < 2000 || yb[m.SpeciesIndex("H2O")] < 0.08 {
		t.Fatalf("equilibrium implausible: T=%g", tb)
	}
}

func TestIgnitionDelayAPI(t *testing.T) {
	m := HydrogenAir()
	y, err := m.PremixedMixture(1.0)
	if err != nil {
		t.Fatal(err)
	}
	tau, err := m.IgnitionDelay(1300, 101325, y, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(tau) || tau <= 0 {
		t.Fatalf("no ignition: %g", tau)
	}
}

func TestParseMechanismAPI(t *testing.T) {
	m, err := ParseMechanism("toy", `
SPECIES
H2 O2 OH H2O N2 H O
END
REACTIONS
H+O2=O+OH 3.547E15 -0.406 16599
END
`)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSpecies() != 7 {
		t.Fatalf("species = %d", m.NumSpecies())
	}
	if _, err := ParseMechanism("bad", "REACTIONS\nA=B 1 2 3\nEND"); err == nil {
		t.Fatal("expected parse error")
	}
}

// runProblem advances a problem a few steps and checks sanity.
func runProblem(t *testing.T, p *Problem, steps int) *Simulation {
	t.Helper()
	sim, err := p.NewSimulation()
	if err != nil {
		t.Fatal(err)
	}
	dt := 0.5 * sim.StableDt()
	sim.Advance(steps, dt)
	lo, hi, err := sim.MinMax("T")
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(lo) || lo < 200 || hi > 3400 {
		t.Fatalf("temperature out of range [%g, %g]", lo, hi)
	}
	// Composition sane everywhere.
	for _, name := range []string{"Y_O2", "Y_N2"} {
		flo, fhi, err := sim.MinMax(name)
		if err != nil {
			t.Fatal(err)
		}
		if flo < -1e-6 || fhi > 1+1e-6 {
			t.Fatalf("%s out of [0,1]: [%g, %g]", name, flo, fhi)
		}
	}
	return sim
}

func TestLiftedJetProblemRuns(t *testing.T) {
	p, err := LiftedJetProblem(LiftedJetOptions{
		Nx: 48, Ny: 40, Nz: 1,
		UJet: 100, IgnitionKernel: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim := runProblem(t, p, 12)
	// The hot coflow must persist at the transverse edges; the cold jet at
	// the centreline near the inlet.
	temp, dims, _ := sim.Field("T")
	edge := temp[0*dims[0]+2]             // j = 0 row, near inlet
	centre := temp[(dims[1]/2)*dims[0]+2] // centreline, near inlet
	if edge < 900 {
		t.Fatalf("coflow cooled to %g K", edge)
	}
	if centre > 900 {
		t.Fatalf("jet core heated to %g K near inlet", centre)
	}
	// Mixture fraction spans [0, 1]-ish across the shear layer.
	b := sim.MixtureFraction(p.YFuel, p.YOx)
	yPoint := make([]float64, p.Config.Mechanism.NumSpecies())
	for i, nm := range p.Config.Mechanism.Species() {
		f, _, _ := sim.Field("Y_" + nm)
		yPoint[i] = f[(dims[1]/2)*dims[0]+2]
	}
	if xi := b.Xi(yPoint); xi < 0.5 {
		t.Fatalf("centreline mixture fraction %g, want fuel-rich", xi)
	}
}

func TestBunsenProblemRuns(t *testing.T) {
	p, err := BunsenProblem(BunsenOptions{
		Case: 'A', Nx: 48, Ny: 36, Nz: 1, VelocityScale: 0.5, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim := runProblem(t, p, 10)
	// Hot pilot coflow and colder reactant core must coexist.
	lo, hi, _ := sim.MinMax("T")
	if hi < 1800 || lo > 1000 {
		t.Fatalf("Bunsen structure lost: T ∈ [%g, %g]", lo, hi)
	}
}

func TestBunsenUnknownCase(t *testing.T) {
	if _, err := BunsenProblem(BunsenOptions{Case: 'X'}); err == nil {
		t.Fatal("expected unknown-case error")
	}
}

func TestBunsenCasesTable(t *testing.T) {
	cases := BunsenCases()
	if len(cases) != 3 {
		t.Fatalf("cases = %d", len(cases))
	}
	if cases['A'].UPrimeSL != 3 || cases['B'].UPrimeSL != 6 || cases['C'].UPrimeSL != 10 {
		t.Fatal("u'/SL ladder wrong")
	}
	if cases['C'].SlotWidth <= cases['A'].SlotWidth {
		t.Fatal("case C slot width must exceed case A (table 1)")
	}
}

func TestRunDecomposedMatchesSerial(t *testing.T) {
	mech := HydrogenAir()
	yAir := make([]float64, mech.NumSpecies())
	yAir[mech.SpeciesIndex("O2")] = 0.233
	yAir[mech.SpeciesIndex("N2")] = 0.767
	cfg := Config{
		Mechanism:    mech,
		Grid:         GridSpec{Nx: 16, Ny: 8, Nz: 8, Lx: 0.01, Ly: 0.01, Lz: 0.01},
		Pressure:     101325,
		ChemistryOff: true,
	}
	init := func(x, y, z float64, s *State) {
		s.U = 5 * math.Sin(2*math.Pi*x/0.01)
		s.T = 330 + 10*math.Cos(2*math.Pi*y/0.01)
		copy(s.Y, yAir)
	}
	serial, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serial.SetInitial(init, nil)
	serial.Advance(3, 4e-7)
	refT, refDims, _ := serial.Field("T")

	var mu sync.Mutex
	worst := 0.0
	err = RunDecomposed(cfg, [3]int{2, 1, 1}, func(r *RankSim) {
		r.SetInitial(init, nil)
		r.Advance(3, 4e-7)
		T, dims, err := r.Field("T")
		if err != nil {
			panic(err)
		}
		for k := 0; k < dims[2]; k++ {
			for j := 0; j < dims[1]; j++ {
				for i := 0; i < dims[0]; i++ {
					got := T[(k*dims[1]+j)*dims[0]+i]
					want := refT[((k+r.Offset[2])*refDims[1]+j+r.Offset[1])*refDims[0]+i+r.Offset[0]]
					mu.Lock()
					if d := math.Abs(got - want); d > worst {
						worst = d
					}
					mu.Unlock()
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if worst > 1e-10 {
		t.Fatalf("decomposed run diverges from serial by %g K", worst)
	}
}

func TestHeatReleaseField(t *testing.T) {
	p, err := LiftedJetProblem(LiftedJetOptions{Nx: 32, Ny: 24, Nz: 1, IgnitionKernel: true})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := p.NewSimulation()
	if err != nil {
		t.Fatal(err)
	}
	hrr, dims, err := sim.Field("hrr")
	if err != nil {
		t.Fatal(err)
	}
	if len(hrr) != dims[0]*dims[1]*dims[2] {
		t.Fatal("hrr length mismatch")
	}
	var maxAbs float64
	for _, v := range hrr {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		t.Fatal("hrr identically zero despite hot kernel")
	}
}

func TestCheckpointRoundTripAPI(t *testing.T) {
	mkSim := func() *Simulation {
		mech := HydrogenAir()
		sim, err := New(Config{
			Mechanism: mech,
			Grid:      GridSpec{Nx: 12, Ny: 10, Nz: 1, Lx: 0.01, Ly: 0.01, Lz: 0.01},
			Pressure:  101325,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	init := func(sim *Simulation) {
		mech := sim.mech
		yAir := make([]float64, mech.NumSpecies())
		yAir[mech.SpeciesIndex("O2")] = 0.233
		yAir[mech.SpeciesIndex("N2")] = 0.767
		sim.SetInitial(func(x, y, z float64, s *State) {
			s.T = 600 + 400*math.Exp(-((x-0.005)/0.002)*((x-0.005)/0.002))
			copy(s.Y, yAir)
		}, nil)
	}
	cont := mkSim()
	init(cont)
	cont.Advance(6, 3e-7)

	split := mkSim()
	init(split)
	split.Advance(3, 3e-7)
	var buf bytes.Buffer
	if err := split.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored := mkSim()
	if err := restored.LoadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored.Advance(3, 3e-7)
	a, _, _ := cont.Field("T")
	b, _, _ := restored.Field("T")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("restart not bit-exact at %d: %g vs %g", i, a[i], b[i])
		}
	}
	if restored.Step() != 6 {
		t.Fatalf("step bookkeeping = %d", restored.Step())
	}
}
