package s3d

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"

	"github.com/s3dgo/s3d/internal/obs"
)

// TestProbeTraceEndToEnd runs a small lifted-jet case with every telemetry
// sink attached and checks the produced trace.jsonl record by record — the
// acceptance path of the observability layer.
func TestProbeTraceEndToEnd(t *testing.T) {
	p, err := LiftedJetProblem(LiftedJetOptions{
		Nx: 32, Ny: 24, Nz: 1, IgnitionKernel: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := p.NewSimulation()
	if err != nil {
		t.Fatal(err)
	}
	var traceBuf, statusBuf bytes.Buffer
	tr := obs.NewTrace(&traceBuf)
	probe, err := sim.StartTelemetry(TelemetryOptions{
		Case:            "lifted-test",
		Config:          map[string]string{"steps": "4"},
		Trace:           tr,
		MonitorAddr:     "127.0.0.1:0",
		Status:          &statusBuf,
		StatusEvery:     2,
		CFLRefreshEvery: 2,
		Pario: func() obs.ParioStats {
			return obs.ParioStats{CacheAccesses: 10, CacheMisses: 2, CacheHitRate: 0.8}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	dt := 0.5 * sim.StableDt()
	probe.Advance(4, dt)

	// The monitor serves the same metrics live, mid-run.
	for path, want := range map[string]string{
		"/metrics": `"solver.steps"`,
		"/status":  `"cfl"`,
		"/healthz": "ok",
	} {
		resp, err := http.Get("http://" + probe.MonitorAddr() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || !strings.Contains(string(body), want) {
			t.Fatalf("GET %s = %d %q, want %q", path, resp.StatusCode, body, want)
		}
	}

	probe.Checkpoint("restart-000004.sdf")
	if err := probe.Close("test complete"); err != nil {
		t.Fatal(err)
	}

	recs, err := obs.ReadTrace(bytes.NewReader(traceBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 7 { // run_start + 4 steps + checkpoint + run_done
		t.Fatalf("got %d records, want 7", len(recs))
	}
	if recs[0].Kind != obs.KindRunStart || recs[0].Run.Case != "lifted-test" {
		t.Fatalf("bad run_start: %+v", recs[0])
	}
	if recs[0].Run.Config["grid"] != "32x24x1" || recs[0].Run.Config["steps"] != "4" {
		t.Fatalf("config manifest incomplete: %v", recs[0].Run.Config)
	}
	for i := 1; i <= 4; i++ {
		ev := recs[i].StepData
		if recs[i].Kind != obs.KindStep || ev == nil {
			t.Fatalf("record %d is not a step: %+v", i, recs[i])
		}
		if ev.Step != i || ev.Dt != dt || ev.Time <= 0 {
			t.Fatalf("step bookkeeping wrong: %+v", ev)
		}
		if ev.CFL <= 0 || ev.CFL > 1 {
			t.Fatalf("CFL = %g, want in (0, 1] for dt = half the stable limit", ev.CFL)
		}
		if ev.WallSec <= 0 || len(ev.StageWallSec) != 6 {
			t.Fatalf("wall times missing: wall=%g stages=%v", ev.WallSec, ev.StageWallSec)
		}
		for s, w := range ev.StageWallSec {
			if w <= 0 {
				t.Fatalf("stage %d wall = %g", s, w)
			}
		}
		if !(ev.TMax > ev.TMin) || ev.TMin < 200 || !(ev.PMax >= ev.PMin) || ev.PMin <= 0 {
			t.Fatalf("physics extrema wrong: %+v", ev)
		}
		if ev.HeatRelease == 0 {
			t.Fatal("heat-release integral not accumulated (ignition kernel is burning)")
		}
		if math.IsNaN(ev.MassDrift) || math.Abs(ev.MassDrift) > 0.1 {
			t.Fatalf("mass drift = %g", ev.MassDrift)
		}
		if ev.Pario.CacheHitRate != 0.8 {
			t.Fatalf("pario stats not threaded: %+v", ev.Pario)
		}
		if ev.Comm.BytesSent != 0 {
			t.Fatalf("serial run reported comm traffic: %+v", ev.Comm)
		}
	}
	if recs[5].Kind != obs.KindCheckpoint || recs[5].Checkpoint.Path != "restart-000004.sdf" {
		t.Fatalf("bad checkpoint record: %+v", recs[5])
	}
	done := recs[6].Done
	if recs[6].Kind != obs.KindRunDone || done == nil {
		t.Fatalf("bad run_done: %+v", recs[6])
	}
	if done.Steps != 4 || done.Metrics.Counters["solver.steps"] != 4 {
		t.Fatalf("summary wrong: steps=%d counters=%v", done.Steps, done.Metrics.Counters)
	}
	if !strings.Contains(done.PerfReport, "RK_UPDATE") {
		t.Fatalf("perf report missing regions:\n%s", done.PerfReport)
	}
	if done.ExitMessage != "test complete" {
		t.Fatalf("exit message %q", done.ExitMessage)
	}
	if n := strings.Count(statusBuf.String(), "\n"); n != 2 { // steps 2 and 4
		t.Fatalf("status cadence wrong: %d lines\n%s", n, statusBuf.String())
	}

	sum := obs.Summarize(recs)
	if sum.Steps != 4 || sum.CacheHits != 0.8 {
		t.Fatalf("summary: %+v", sum)
	}
}

// TestProbeDecomposedCommBytes checks that a decomposed run's trace carries
// real communication counters from the halo exchange.
func TestProbeDecomposedCommBytes(t *testing.T) {
	mech := HydrogenAir()
	yAir := make([]float64, mech.NumSpecies())
	yAir[mech.SpeciesIndex("O2")] = 0.233
	yAir[mech.SpeciesIndex("N2")] = 0.767
	cfg := Config{
		Mechanism:    mech,
		Grid:         GridSpec{Nx: 16, Ny: 8, Nz: 1, Lx: 0.01, Ly: 0.005, Lz: 0.01},
		Pressure:     101325,
		ChemistryOff: true,
	}
	var traceBuf bytes.Buffer
	tr := obs.NewTrace(&traceBuf)
	const dt = 1e-8
	err := RunDecomposed(cfg, [3]int{2, 1, 1}, func(r *RankSim) {
		r.SetInitial(func(x, y, z float64, s *State) {
			s.U = 3 * math.Sin(2*math.Pi*x/0.01)
			s.T = 320
			copy(s.Y, yAir)
		}, nil)
		if r.Rank == 0 {
			probe, err := r.StartTelemetry(TelemetryOptions{Case: "decomposed", Trace: tr})
			if err != nil {
				panic(err)
			}
			probe.Advance(3, dt)
			if err := probe.Close(""); err != nil {
				panic(err)
			}
		} else {
			r.Advance(3, dt)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadTrace(bytes.NewReader(traceBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var last *obs.StepEvent
	for _, rec := range recs {
		if rec.Kind == obs.KindStep {
			last = rec.StepData
		}
	}
	if last == nil || last.Step != 3 {
		t.Fatalf("no step records in decomposed trace")
	}
	// Counters are cumulative: the final record carries the run's totals.
	if last.Comm.BytesSent == 0 || last.Comm.MsgsSent == 0 || last.Comm.BytesRecv == 0 {
		t.Fatalf("halo-exchange traffic not counted: %+v", last.Comm)
	}
	if last.Comm.WaitSec < 0 || last.Comm.CollSec < 0 {
		t.Fatalf("negative blocked time: %+v", last.Comm)
	}
	if len(last.StageWallSec) != 6 {
		t.Fatalf("stage walls: %v", last.StageWallSec)
	}
}
