package s3d

// Field inventory: the public face of the solver's field registry. Every
// array the solver allocates — conserved registers, primitives, transport
// properties, gradients, fluxes, scratch — is registered once with stable
// metadata (grid.FieldSet), and this file exposes that single source of
// truth: Fields for programmatic use, and the /fields endpoint the
// telemetry monitor serves for run-time inspection, so viz pickers,
// checkpoint tooling and dashboards all agree on what exists and what it
// is called.

import (
	"encoding/json"
	"fmt"
	"net/http"

	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/sdf"
)

// FieldInfo describes one registered solver field.
type FieldInfo struct {
	// Name is the stable registry name ("rho", "T", "Y_OH", "Q_rhoE", …)
	// accepted by Field, viz field pickers and the in-situ observers.
	Name string `json:"name"`
	// Role classifies the field: conserved, register, primitive,
	// transport, gradient, flux, scratch, cost — or derived for on-demand
	// diagnostics that have no backing storage.
	Role string `json:"role"`
	// Species is the species name for per-species fields, "" otherwise.
	Species string `json:"species,omitempty"`
	// HaloGroup names the ghost-exchange group the field belongs to
	// ("conserved" or "flux"), "" if it is never exchanged.
	HaloGroup string `json:"halo_group,omitempty"`
	// Checkpoint is the on-disk restart-file variable name, "" if the
	// field is not checkpointed.
	Checkpoint string `json:"checkpoint,omitempty"`
	// Storage is the field's resolved storage class under the simulation's
	// precision policy: "float64" or "float32" ("" for derived fields).
	Storage string `json:"storage,omitempty"`
	// Width is the storage width in bytes (8 or 4; 0 for derived fields).
	Width int `json:"width,omitempty"`
	// Derived marks diagnostics computed on demand (e.g. "hrr") rather
	// than resolved from registry storage.
	Derived bool `json:"derived,omitempty"`
}

// Fields returns the simulation's field inventory in registration order —
// the same order that fixes the arena layout, the halo pack order and the
// checkpoint variable sequence — followed by the derived diagnostics
// Field accepts ("hrr"). Metadata is immutable after construction, so the
// result is safe to read concurrently with a running simulation.
func (s *Simulation) Fields() []FieldInfo {
	fs := s.blk.Fields()
	names := s.mech.Species()
	out := make([]FieldInfo, 0, fs.Len()+1)
	for id := 0; id < fs.Len(); id++ {
		m := fs.Meta(id)
		st := fs.Storage(id)
		fi := FieldInfo{
			Name:       m.Name,
			Role:       m.Role.String(),
			HaloGroup:  m.Group,
			Checkpoint: m.Ckpt,
			Storage:    st.String(),
			Width:      st.Width(),
		}
		if m.Species >= 0 && m.Species < len(names) {
			fi.Species = names[m.Species]
		}
		out = append(out, fi)
	}
	out = append(out, FieldInfo{Name: "hrr", Role: "derived", Derived: true})
	return out
}

// FieldsDocument is the JSON document served at /fields by the telemetry
// monitor and written as fields.json by the workflow production driver.
type FieldsDocument struct {
	Grid      [3]int      `json:"grid"`
	Ghost     int         `json:"ghost"`
	Count     int         `json:"count"`
	Precision string      `json:"precision"`
	Backend   string      `json:"backend"`
	Fields    []FieldInfo `json:"fields"`
}

// FieldsDocument assembles the full inventory document.
func (s *Simulation) FieldsDocument() FieldsDocument {
	nx, ny, nz := s.Dims()
	fields := s.Fields()
	return FieldsDocument{
		Grid:      [3]int{nx, ny, nz},
		Ghost:     grid.Ghost,
		Count:     len(fields),
		Precision: s.blk.PrecisionPolicy(),
		Backend:   s.blk.BackendSpec(),
		Fields:    fields,
	}
}

// FieldRows resolves a registered field and returns a streaming row source
// over its interior (contiguous per-row arena views, k-then-j order) for
// sdf.AddVarFunc write paths. Float64 fields emit arena views, copying each
// value exactly once into the encoder buffer; float32 fields (mixed policy)
// widen row by row through a single reused buffer — the on-disk format is
// float64 under every policy.
func (s *Simulation) FieldRows(name string) (sdf.RowSource, [3]int, error) {
	nx, ny, nz := s.Dims()
	dims := [3]int{nx, ny, nz}
	f := s.blk.FieldByName(name)
	if f == nil {
		return nil, dims, fmt.Errorf("s3d: unknown field %q", name)
	}
	var buf []float64
	if f.Data32 != nil {
		buf = make([]float64, nx)
	}
	return func(emit func(chunk []float64) error) error {
		for k := 0; k < nz; k++ {
			for j := 0; j < ny; j++ {
				if err := emit(f.RowInto(buf, j, k)); err != nil {
					return err
				}
			}
		}
		return nil
	}, dims, nil
}

// AnalysisFields returns the registry's bulk primitive scalars (rho, u, v,
// w, T, p, Wmix) in registration order — the derived-field set the
// workflow's analysis files carry, selected by role rather than by a
// hard-coded name list.
func (s *Simulation) AnalysisFields() []string {
	var out []string
	for _, fi := range s.Fields() {
		if fi.Role == "primitive" && fi.Species == "" {
			out = append(out, fi.Name)
		}
	}
	return out
}

// fieldsHandler serves the inventory document as JSON (mounted at /fields
// on the telemetry monitor alongside /metrics and /health).
func (s *Simulation) fieldsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.FieldsDocument())
	})
}
